// Conservative parallel DES engine (DESIGN.md §11): safe-window
// computation, mailbox merge order, zero-lookahead rejection, the
// cross-partition scheduling guard, and the bitwise 1-vs-N-worker digest
// contract on the fig9 cluster topology.
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/metrics_scraper.hpp"
#include "cluster/session_fleet.hpp"
#include "cluster/vm_migrator.hpp"
#include "simcore/check.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

TEST(PdesEngine, LookaheadIsMinRegisteredLink) {
  sim::ParallelSimulation eng({.partitions = 3, .workers = 1});
  eng.register_link(500);
  eng.register_link(300);
  eng.register_link(450);
  EXPECT_EQ(eng.lookahead(), 300);
}

TEST(PdesEngine, ExplicitLookaheadOverridesLinks) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 250});
  eng.register_link(100);  // ignored: Config::lookahead is in force
  EXPECT_EQ(eng.lookahead(), 250);
}

TEST(PdesEngine, ZeroLookaheadRejected) {
  sim::ParallelSimulation eng({.partitions = 2, .workers = 1});
  EXPECT_THROW(eng.register_link(0), InvariantViolation);
  EXPECT_THROW(eng.register_link(-5), InvariantViolation);
  // No links registered at all: the engine cannot open any safe window.
  EXPECT_THROW(eng.run_until(10), InvariantViolation);
}

TEST(PdesEngine, CrossPartitionPostBelowLookaheadThrows) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  eng.run_on(0, [&eng] { eng.post(1, 99, [] {}); });
  EXPECT_THROW(eng.run_until(1000), InvariantViolation);
}

TEST(PdesEngine, SamePartitionPostMayUndercutLookahead) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  bool fired = false;
  eng.run_on(0, [&eng, &fired] { eng.post(0, 1, [&fired] { fired = true; }); });
  eng.run_until(1000);
  EXPECT_TRUE(fired);
}

TEST(PdesEngine, PostOutsidePartitionContextThrows) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  EXPECT_THROW(eng.post(1, 200, [] {}), InvariantViolation);
}

TEST(PdesEngine, MessageArrivesAtSendTimePlusDelay) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 300});
  sim::SimTime arrived_at = -1;
  eng.run_on(0, [&] { eng.post(1, 300, [&] { arrived_at = eng.partition(1).now(); }); });
  eng.run_until(1000);
  EXPECT_EQ(arrived_at, 300);
  EXPECT_EQ(eng.messages_routed(), 1u);
  EXPECT_EQ(eng.partition(0).now(), 1000);
  EXPECT_EQ(eng.partition(1).now(), 1000);
}

TEST(PdesEngine, RunUntilExecutesEventsExactlyAtDeadline) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  bool fired = false;
  eng.run_on(0, [&] { eng.partition(0).after(250, [&fired] { fired = true; }); });
  eng.run_until(250);
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.partition(0).now(), 250);
  EXPECT_EQ(eng.partition(1).now(), 250);
}

// Same-time cross-partition deliveries must merge in (time, dst, src,
// seq) order -- per-sender program order preserved, senders ordered by
// partition id -- for every worker count.
TEST(PdesEngine, MailboxMergeOrderIsTimeDstSrcSeq) {
  std::vector<std::vector<std::pair<int, int>>> logs;
  for (std::size_t workers : {1u, 2u, 3u}) {
    sim::ParallelSimulation eng(
        {.partitions = 3, .workers = workers, .lookahead = 100});
    std::vector<std::pair<int, int>> log;
    // Seed partition 2 first: arrival order must come from the sort key,
    // not from seeding or execution order.
    eng.run_on(2, [&] {
      eng.post(0, 100, [&log] { log.emplace_back(2, 0); });
      eng.post(0, 100, [&log] { log.emplace_back(2, 1); });
    });
    eng.run_on(1, [&] {
      eng.post(0, 100, [&log] { log.emplace_back(1, 0); });
      eng.post(0, 100, [&log] { log.emplace_back(1, 1); });
    });
    eng.run_until(500);
    logs.push_back(std::move(log));
  }
  const std::vector<std::pair<int, int>> want = {{1, 0}, {1, 1}, {2, 0}, {2, 1}};
  for (const auto& log : logs) EXPECT_EQ(log, want);
}

TEST(PdesEngine, CrossPartitionAtBelowHorizonThrowsLoudly) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  // A partition-0 event reaching directly into partition 1's calendar
  // below the published safe horizon: must fail loudly, never reorder.
  eng.run_on(0, [&eng] { eng.partition(1).at(5, [] {}); });
  EXPECT_THROW(eng.run_until(1000), InvariantViolation);
}

TEST(PdesEngine, QuiescentSchedulingIsUnrestricted) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  // Setup-time scheduling from the main thread onto any partition is
  // legal: the horizon is parked at SimTime minimum while quiescent.
  bool fired = false;
  eng.partition(1).at(5, [&fired] { fired = true; });
  eng.run_until(10);
  EXPECT_TRUE(fired);
}

TEST(PdesEngine, RunWhileStopsAtPredicateAndDrain) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 2, .lookahead = 100});
  int ticks = 0;
  eng.run_on(0, [&] {
    // Self-rescheduling ticker: only the predicate can stop it.
    struct Tick {
      sim::ParallelSimulation& eng;
      int& ticks;
      void operator()() {
        ++ticks;
        eng.partition(0).after(1000, Tick{eng, ticks});
      }
    };
    Tick{eng, ticks}();
  });
  eng.run_while([&ticks] { return ticks < 5; });
  EXPECT_GE(ticks, 5);
  // Drained-empty stop: no events at all ends the run instead of hanging.
  sim::ParallelSimulation idle(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  idle.run_while([] { return true; });
  EXPECT_EQ(idle.windows_executed(), 0u);
}

// ------------------------------------------------------ run_window units

TEST(SimulationWindow, RunWindowIsHalfOpenByDefault) {
  sim::Simulation s;
  bool inside = false, boundary = false;
  s.at(5, [&inside] { inside = true; });
  s.at(10, [&boundary] { boundary = true; });
  s.run_window(10);
  EXPECT_TRUE(inside);
  EXPECT_FALSE(boundary);
  EXPECT_EQ(s.now(), 10);
  s.run_window(10, /*inclusive=*/true);
  EXPECT_TRUE(boundary);
}

TEST(SimulationWindow, AdvanceToRefusesToSkipEvents) {
  sim::Simulation s;
  s.at(7, [] {});
  EXPECT_THROW(s.advance_to(7), InvariantViolation);
  s.run_window(8);
  s.advance_to(20);
  EXPECT_EQ(s.now(), 20);
}

// --------------------------------------------- fig9-topology digest grid

struct ClusterDigest {
  std::uint64_t h = 0;
  void mix(std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
};

enum class Variant {
  kPlain,
  kFaults,
  kObserve,
  kSharded,
  kCrashWave,
  kCrashScale,
  kScrape
};

std::uint64_t cluster_digest(std::size_t workers, Variant variant) {
  // kSharded exercises the DESIGN.md §12 control plane: shard partitions
  // between the control plane and the hosts, a batched SessionFleet pinned
  // to the shards, and a wave-based rolling pass instead of the serial one.
  const int shards = variant == Variant::kSharded ||
                             variant == Variant::kCrashScale ||
                             variant == Variant::kScrape
                         ? 2
                         : 0;
  sim::ParallelSimulation engine(
      {.partitions = static_cast<std::int32_t>(4 + shards),
       .workers = workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 2;
  cfg.files_per_vm = 8;
  cfg.file_size = 64 * sim::kKiB;
  cfg.engine = &engine;
  cfg.shards = shards;
  if (variant == Variant::kFaults) {
    cfg.faults = fault::FaultConfig::uniform(0.05);
  }
  if (variant == Variant::kCrashWave) {
    // Unplanned VMM failures mid-wave: every host's turn opens with a
    // crash-or-hang roll, and micro-recovery (a host-RNG draw per attempt)
    // decides the rung each ladder lands on.
    cfg.faults.vmm_crash_rate = 0.5;
    cfg.faults.vmm_hang_rate = 0.5;
  }
  if (variant == Variant::kCrashScale || variant == Variant::kScrape) {
    // Steady in-service faults under the sharded control plane: per-host
    // SteadyFaultProcess arrivals race the wave turns, the recovery
    // drivers, the crash-evict/readmit broadcasts, and the fleet's
    // unplanned-downtime attribution across every partition boundary.
    // kScrape layers the telemetry plane on top: scrape RPCs, timeouts
    // and TSDB ingestion race all of the above through the mailboxes.
    cfg.faults.vmm_crash_rate = 0.5;
    cfg.faults.vmm_hang_rate = 0.25;
  }
  cfg.observe = variant == Variant::kObserve;
  cluster::Cluster cl(engine.partition(0), cfg);

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });

  cluster::ClusterClientFleet fleet(engine.partition(0), cl.balancer(),
                                    {.connections = 8});
  std::unique_ptr<cluster::SessionFleet> sessions;
  if (variant == Variant::kSharded || variant == Variant::kCrashScale ||
      variant == Variant::kScrape) {
    sessions = std::make_unique<cluster::SessionFleet>(
        *cl.sharded_balancer(),
        cluster::SessionFleet::Config{
            .sessions = 64,
            .think_base = 1 * sim::kSecond,
            .think_spread = 1 * sim::kSecond,
            .retry_interval = 500 * sim::kMillisecond,
            .tick = 250 * sim::kMillisecond});
    sessions->start(engine);
  } else {
    engine.run_on(0, [&fleet] { fleet.start(); });
  }
  if (variant == Variant::kCrashScale || variant == Variant::kScrape) {
    cluster::Cluster::SteadyFaultsConfig sfc;
    sfc.process.check_interval = sim::kSecond;
    sfc.supervisor.micro.enabled = true;
    sfc.supervisor.micro.success_rate = 0.7;
    cl.start_steady_faults(sfc);
  }
  if (variant == Variant::kScrape) {
    cluster::Cluster::ScrapeConfig sc;
    sc.interval = 2 * sim::kSecond;
    sc.timeout = 500 * sim::kMillisecond;
    // Keep the burn-rate gate armed but out of the way: with crashes this
    // frequent a production threshold would pause the pass indefinitely,
    // and this test is about bitwise invariance, not gating policy.
    sc.slo.pause_burn_rate = 50.0;
    cl.start_scraping(sc);
  }
  engine.run_until(engine.partition(0).now() + 10 * sim::kSecond);

  bool done = false;
  if (variant == Variant::kFaults) {
    engine.run_on(0, [&cl, &done] {
      cl.rolling_rejuvenation_supervised(
          {}, [&done](const cluster::Cluster::RollingReport&) { done = true; });
    });
  } else if (variant == Variant::kSharded) {
    engine.run_on(0, [&cl, &done] {
      cluster::Cluster::WaveConfig wcfg;
      wcfg.wave_size = 2;
      cl.rolling_rejuvenation_waves(
          wcfg, [&done](const cluster::Cluster::WaveReport&) { done = true; });
    });
  } else if (variant == Variant::kCrashScale || variant == Variant::kScrape) {
    engine.run_on(0, [&cl, &done, variant] {
      cluster::Cluster::WaveConfig wcfg;
      wcfg.wave_size = 2;
      wcfg.max_concurrent_down = 2;  // crash-down hosts count against this
      if (variant == Variant::kScrape) {
        // Production-shaped: the pass orders hosts from the scraped TSDB
        // alone, never probing host partitions for signals.
        wcfg.signals = cluster::Cluster::WaveSignalSource::kScraped;
      }
      cl.rolling_rejuvenation_waves(
          wcfg, [&done](const cluster::Cluster::WaveReport&) { done = true; });
    });
  } else if (variant == Variant::kCrashWave) {
    engine.run_on(0, [&cl, &done] {
      cluster::Cluster::WaveConfig wcfg;
      wcfg.wave_size = 2;
      wcfg.supervisor.micro.enabled = true;
      wcfg.supervisor.micro.success_rate = 0.7;
      cl.rolling_rejuvenation_waves(
          wcfg, [&done](const cluster::Cluster::WaveReport&) { done = true; });
    });
  } else {
    engine.run_on(0, [&cl, &done] {
      cl.rolling_rejuvenation(rejuv::RebootKind::kWarm,
                              [&done] { done = true; });
    });
  }
  engine.run_while([&done] { return !done; });
  engine.run_until(engine.partition(0).now() + 20 * sim::kSecond);

  ClusterDigest d;
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    d.mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    d.mix(engine.partition(p).executed_events());
  }
  d.mix(static_cast<std::uint64_t>(fleet.completions().total()));
  d.mix(cl.balancer().dispatched());
  d.mix(cl.balancer().rejected());
  for (const auto dur : cl.rejuvenation_durations()) {
    d.mix(static_cast<std::uint64_t>(dur));
  }
  if (variant == Variant::kFaults) {
    const auto& report = cl.last_rolling_report();
    d.mix(report.passes.size());
    d.mix(report.evicted_hosts.size());
    d.mix(report.recovered_hosts.size());
    d.mix(report.failed_hosts.size());
    d.mix(report.pressured_hosts.size());
  }
  if (variant == Variant::kCrashWave) {
    const auto& report = cl.last_wave_report();
    d.mix(report.waves.size());
    d.mix(report.degraded_hosts.size());
    d.mix(report.unrecovered_hosts.size());
    for (const auto& w : report.waves) {
      d.mix(static_cast<std::uint64_t>(w.started));
      d.mix(static_cast<std::uint64_t>(w.finished));
      for (std::size_t i = 0; i < w.outcomes.size(); ++i) {
        const auto& o = w.outcomes[i];
        d.mix(w.outcome_hosts[i]);
        d.mix(o.micro_attempts);
        d.mix(o.micro_recovered ? 1 : 0);
        d.mix(o.vmm_crashed ? 1 : 0);
        d.mix(static_cast<std::uint64_t>(o.completed));
        d.mix(static_cast<std::uint64_t>(o.total_duration()));
        d.mix(o.recoveries.size());
      }
    }
  }
  if (variant == Variant::kSharded || variant == Variant::kCrashScale ||
      variant == Variant::kScrape) {
    d.mix(cl.sharded_balancer()->state_digest());
    d.mix(sessions->state_digest());
    const auto& report = cl.last_wave_report();
    d.mix(report.waves.size());
    d.mix(report.hosts_rejuvenated);
    for (const auto& w : report.waves) {
      d.mix(static_cast<std::uint64_t>(w.started));
      d.mix(static_cast<std::uint64_t>(w.finished));
      for (const auto h : w.hosts) d.mix(h);
    }
  }
  if (variant == Variant::kCrashScale || variant == Variant::kScrape) {
    const auto& report = cl.last_wave_report();
    d.mix(report.admission_pauses);
    d.mix(report.deferred_turns);
    d.mix(report.unrecovered_hosts.size());
    d.mix(static_cast<std::uint64_t>(report.planned_downtime));
    const auto& un = cl.unplanned_report();
    d.mix(un.failures);
    d.mix(un.absorbed);
    d.mix(un.recoveries);
    d.mix(un.micro_recoveries);
    d.mix(un.unrecovered);
    d.mix(static_cast<std::uint64_t>(un.downtime));
    d.mix(cl.sharded_balancer()->crash_broadcasts());
  }
  if (variant == Variant::kScrape) {
    // The full telemetry plane: TSDB ring contents, SLO window, per-host
    // scrape outcomes, flight records, detection histogram.
    d.mix(cl.scraper()->state_digest());
  }
  for (int h = 0; h < cfg.hosts; ++h) {
    d.mix(cl.host(h).obs().spans().records().size());
    d.mix(cl.host(h).obs().events().size());
    d.mix(cl.host(h).vmm_generation());
  }
  d.mix(engine.messages_routed());
  return d.h;
}

class PdesClusterDigestGrid : public ::testing::TestWithParam<Variant> {};

TEST_P(PdesClusterDigestGrid, OneVsNWorkersBitwiseIdentical) {
  const std::uint64_t one = cluster_digest(1, GetParam());
  EXPECT_EQ(cluster_digest(2, GetParam()), one);
  EXPECT_EQ(cluster_digest(4, GetParam()), one);
}

INSTANTIATE_TEST_SUITE_P(Fig9Topology, PdesClusterDigestGrid,
                         ::testing::Values(Variant::kPlain, Variant::kFaults,
                                           Variant::kObserve, Variant::kSharded,
                                           Variant::kCrashWave,
                                           Variant::kCrashScale,
                                           Variant::kScrape),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kPlain: return "plain";
                             case Variant::kFaults: return "faults";
                             case Variant::kObserve: return "observe";
                             case Variant::kSharded: return "sharded";
                             case Variant::kCrashWave: return "crashwave";
                             case Variant::kCrashScale: return "crashscale";
                             case Variant::kScrape: return "scrape";
                           }
                           return "unknown";
                         });

// A backend evicted while its reachability probe is in flight must not be
// served by the stale "up" reply: the balancer re-checks membership on the
// balancer partition when the reply lands (regression -- the probe reply
// used to dispatch directly, resurrecting evicted backends).
TEST(PdesCluster, EvictedMidProbeBackendIsNotServed) {
  sim::ParallelSimulation engine({.partitions = 3, .workers = 1});
  cluster::Cluster::Config cfg;
  cfg.hosts = 2;
  cfg.vms_per_host = 1;
  cfg.files_per_vm = 4;
  cfg.file_size = 64 * sim::kKiB;
  cfg.calib.link.latency = 1000;  // 1 ms: a wide in-flight window
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });

  bool done = false, served = false;
  engine.run_on(0, [&] {
    // The round-robin cursor starts at host 0's backend, so the first
    // probe targets host 0. Evict it while that probe is in flight
    // (probe out +1ms, reply back +1ms; eviction lands at +1.5ms).
    cl.balancer().dispatch([&](bool ok) {
      served = ok;
      done = true;
    });
    engine.partition(0).after(1500, [&cl] {
      cl.balancer().set_host_evicted(&cl.host(0), true);
    });
  });
  engine.run_while([&done] { return !done; });

  EXPECT_TRUE(served);  // host 1 picked it up
  EXPECT_EQ(cl.balancer().dispatched(), std::uint64_t{1});
  auto served_by = [&cl](int h) {
    return static_cast<guest::ApacheService*>(
               cl.guest(h, 0).find_service("httpd"))
        ->requests_served();
  };
  EXPECT_EQ(served_by(0), std::uint64_t{0});  // never resurrected
  EXPECT_EQ(served_by(1), std::uint64_t{1});
}

// Federated failover under the engine: a shard whose every backend is
// evicted spills its traffic to the next shard on the ring, over the
// mailboxes, and the outcome is identical for 1 and 4 workers.
TEST(PdesCluster, EmptiedShardFailsOverAcrossPartitions) {
  auto run = [](std::size_t workers) {
    sim::ParallelSimulation engine({.partitions = 7, .workers = workers});
    cluster::Cluster::Config cfg;
    cfg.hosts = 4;  // shard 0 owns hosts {0, 2}, shard 1 owns {1, 3}
    cfg.shards = 2;
    cfg.vms_per_host = 1;
    cfg.files_per_vm = 4;
    cfg.file_size = 64 * sim::kKiB;
    cfg.engine = &engine;
    cluster::Cluster cl(engine.partition(0), cfg);
    bool ready = false;
    cl.start([&ready] { ready = true; });
    engine.run_while([&ready] { return !ready; });

    auto* sb = cl.sharded_balancer();
    sb->set_host_evicted(0, true);
    sb->set_host_evicted(2, true);
    std::uint64_t key = 0;
    while (sb->home_shard(key) != 0) ++key;

    int outcomes = 0, served = 0;
    engine.run_on(0, [&] {
      for (int i = 0; i < 2; ++i) {
        sb->dispatch(key, [&](bool ok) {
          served += ok ? 1 : 0;
          ++outcomes;
        });
      }
    });
    engine.run_while([&outcomes] { return outcomes < 2; });

    EXPECT_EQ(served, 2);
    EXPECT_EQ(sb->federated(), std::uint64_t{2});
    EXPECT_EQ(sb->shard_federated(1), std::uint64_t{2});
    EXPECT_EQ(sb->rejected(), std::uint64_t{0});
    return sb->state_digest();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(PdesCluster, CrossPartitionMigrationRejected) {
  sim::ParallelSimulation engine(
      {.partitions = 3, .workers = 1, .lookahead = 200});
  cluster::Cluster::Config cfg;
  cfg.hosts = 2;
  cfg.vms_per_host = 1;
  cfg.files_per_vm = 2;
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });

  cluster::VmMigrator migrator;
  EXPECT_THROW(migrator.migrate(cl.guest(0, 0), cl.host(1),
                                [](const cluster::VmMigrator::Result&) {}),
               InvariantViolation);
}

}  // namespace
