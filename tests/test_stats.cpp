#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/stats.hpp"

namespace rh::test {
namespace {

TEST(Summary, BasicMoments) {
  sim::Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), std::size_t{8});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyThrows) {
  sim::Summary s;
  EXPECT_THROW((void)s.mean(), InvariantViolation);
  EXPECT_THROW((void)s.min(), InvariantViolation);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), InvariantViolation);  // needs two samples
}

TEST(SummaryMerge, EmptyIntoEmpty) {
  sim::Summary a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), std::size_t{0});
}

TEST(SummaryMerge, EmptySidesAreIdentity) {
  sim::Summary a, b, empty;
  for (const double x : {1.0, 2.0, 3.0}) a.add(x);
  b = a;
  a.merge(empty);  // right identity
  EXPECT_EQ(a.count(), std::size_t{3});
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  sim::Summary left;
  left.merge(b);  // left identity
  EXPECT_EQ(left.count(), std::size_t{3});
  EXPECT_DOUBLE_EQ(left.mean(), b.mean());
  EXPECT_DOUBLE_EQ(left.variance(), b.variance());
}

TEST(SummaryMerge, MatchesSingleStream) {
  // Split one sample stream in two, merge, and compare against adding
  // everything to a single Summary.
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  sim::Summary whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SummaryMerge, AssociativeUpToFloatNoise) {
  sim::Summary a, b, c;
  for (const double x : {1.0, 5.0}) a.add(x);
  for (const double x : {2.0, 8.0, 3.0}) b.add(x);
  c.add(11.0);
  // (a + b) + c  vs  a + (b + c)
  sim::Summary ab = a;
  ab.merge(b);
  ab.merge(c);
  sim::Summary bc = b;
  bc.merge(c);
  sim::Summary a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab.count(), a_bc.count());
  EXPECT_NEAR(ab.mean(), a_bc.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), a_bc.variance(), 1e-12);
}

TEST(TCritical, TabulatedAndAsymptoticValues) {
  EXPECT_NEAR(sim::t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(sim::t_critical_95(4), 2.776, 1e-3);
  EXPECT_NEAR(sim::t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(sim::t_critical_95(60), 2.000, 1e-3);
  EXPECT_NEAR(sim::t_critical_95(100000), 1.960, 1e-3);
  // Monotone nonincreasing in dof.
  double prev = sim::t_critical_95(1);
  for (std::size_t dof = 2; dof <= 200; ++dof) {
    EXPECT_LE(sim::t_critical_95(dof), prev + 1e-12);
    prev = sim::t_critical_95(dof);
  }
}

TEST(Ci95, HalfWidth) {
  sim::Summary s;
  EXPECT_DOUBLE_EQ(sim::ci95_half_width(s), 0.0);  // empty
  s.add(5.0);
  EXPECT_DOUBLE_EQ(sim::ci95_half_width(s), 0.0);  // one sample
  s.add(7.0);  // mean 6, stddev sqrt(2), dof 1
  EXPECT_NEAR(sim::ci95_half_width(s), 12.706 * std::sqrt(2.0) / std::sqrt(2.0),
              1e-3);
}

TEST(LinearFit, ExactLine) {
  // y = 2x + 1 exactly.
  std::vector<double> x{1, 2, 3, 4, 5}, y{3, 5, 7, 9, 11};
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, 7.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, ConstantYIsPerfectFlatFit) {
  std::vector<double> x{1, 2, 3}, y{5, 5, 5};
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinearFit, RejectsBadInput) {
  EXPECT_THROW(sim::fit_linear({1}, {2}), InvariantViolation);
  EXPECT_THROW(sim::fit_linear({1, 2}, {1}), InvariantViolation);
  EXPECT_THROW(sim::fit_linear({3, 3}, {1, 2}), InvariantViolation);  // degenerate x
}

TEST(LinearFit, FormatsLikeThePaper) {
  sim::LinearFit fit{-0.55, 43.0, 1.0};
  EXPECT_EQ(fit.to_string("n"), "-0.55n + 43.00");
  sim::LinearFit fit2{0.43, -0.07, 1.0};
  EXPECT_EQ(fit2.to_string("n"), "0.43n - 0.07");
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(sim::percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 95), 10.0);
  EXPECT_THROW(sim::percentile({}, 50), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
