#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/stats.hpp"

namespace rh::test {
namespace {

TEST(Summary, BasicMoments) {
  sim::Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), std::size_t{8});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyThrows) {
  sim::Summary s;
  EXPECT_THROW((void)s.mean(), InvariantViolation);
  EXPECT_THROW((void)s.min(), InvariantViolation);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), InvariantViolation);  // needs two samples
}

TEST(LinearFit, ExactLine) {
  // y = 2x + 1 exactly.
  std::vector<double> x{1, 2, 3, 4, 5}, y{3, 5, 7, 9, 11};
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, 7.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, ConstantYIsPerfectFlatFit) {
  std::vector<double> x{1, 2, 3}, y{5, 5, 5};
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinearFit, RejectsBadInput) {
  EXPECT_THROW(sim::fit_linear({1}, {2}), InvariantViolation);
  EXPECT_THROW(sim::fit_linear({1, 2}, {1}), InvariantViolation);
  EXPECT_THROW(sim::fit_linear({3, 3}, {1, 2}), InvariantViolation);  // degenerate x
}

TEST(LinearFit, FormatsLikeThePaper) {
  sim::LinearFit fit{-0.55, 43.0, 1.0};
  EXPECT_EQ(fit.to_string("n"), "-0.55n + 43.00");
  sim::LinearFit fit2{0.43, -0.07, 1.0};
  EXPECT_EQ(fit2.to_string("n"), "0.43n - 0.07");
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(sim::percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile(v, 95), 10.0);
  EXPECT_THROW(sim::percentile({}, 50), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
