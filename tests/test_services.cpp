// Service lifecycle + the three concrete services.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(Services, StartStopLifecycle) {
  HostFixture fx(0);
  auto& g = fx.add_vm("vm", sim::kGiB);
  auto* ssh = g.find_service("sshd");
  EXPECT_TRUE(ssh->running());
  EXPECT_EQ(ssh->generation(), std::uint64_t{1});
  bool stopped = false;
  ssh->stop(g, [&] { stopped = true; });
  EXPECT_FALSE(ssh->running());  // refuses requests immediately
  run_until_flag(fx.sim, stopped);
  bool started = false;
  ssh->start(g, [&] { started = true; });
  run_until_flag(fx.sim, started);
  EXPECT_EQ(ssh->generation(), std::uint64_t{2});
}

TEST(Services, DoubleStartRejectedStopIdempotent) {
  HostFixture fx(0);
  auto& g = fx.add_vm("vm", sim::kGiB);
  auto* ssh = g.find_service("sshd");
  EXPECT_THROW(ssh->start(g, [] {}), InvariantViolation);
  bool s1 = false, s2 = false;
  ssh->stop(g, [&] { s1 = true; });
  ssh->stop(g, [&] { s2 = true; });  // already stopping: immediate
  EXPECT_TRUE(s2);
  run_until_flag(fx.sim, s1);
}

TEST(Services, JbossStartsMuchSlowerThanSsh) {
  HostFixture fx(0);
  auto g = std::make_unique<guest::GuestOs>(*fx.host, "app", sim::kGiB);
  auto& ssh = g->add_service(std::make_unique<guest::SshService>());
  auto& jboss = g->add_service(std::make_unique<guest::JbossService>());
  (void)ssh;
  const sim::SimTime t0 = fx.sim.now();
  bool up = false;
  g->create_and_boot([&] { up = true; });
  run_until_flag(fx.sim, up);
  // JBoss alone adds >= 16 s of CPU + ~5 s of jar reads.
  EXPECT_GT(sim::to_seconds(fx.sim.now() - t0), 25.0);
  EXPECT_TRUE(jboss.running());
}

TEST(Services, ApacheServesOnlyWhenReachable) {
  HostFixture fx(0);
  auto g = std::make_unique<guest::GuestOs>(*fx.host, "web", sim::kGiB);
  auto& apache = static_cast<guest::ApacheService&>(
      g->add_service(std::make_unique<guest::ApacheService>()));
  const auto file = g->vfs().create_file("doc", 512 * sim::kKiB);
  // Not booted: refused.
  bool refused = false;
  apache.serve_file(*g, file, [&](bool served) { refused = !served; });
  EXPECT_TRUE(refused);
  EXPECT_EQ(apache.requests_refused(), std::uint64_t{1});

  bool up = false;
  g->create_and_boot([&] { up = true; });
  run_until_flag(fx.sim, up);
  bool served = false;
  apache.serve_file(*g, file, [&](bool s) { served = s; });
  fx.sim.run_for(sim::kSecond);
  EXPECT_TRUE(served);
  EXPECT_EQ(apache.requests_served(), std::uint64_t{1});
}

TEST(Services, ApacheCachedVsUncachedLatency) {
  HostFixture fx(0);
  auto g = std::make_unique<guest::GuestOs>(*fx.host, "web", sim::kGiB);
  auto& apache = static_cast<guest::ApacheService&>(
      g->add_service(std::make_unique<guest::ApacheService>()));
  const auto file = g->vfs().create_file("doc", 512 * sim::kKiB);
  bool up = false;
  g->create_and_boot([&] { up = true; });
  run_until_flag(fx.sim, up);

  auto serve = [&] {
    const sim::SimTime t0 = fx.sim.now();
    bool done = false;
    apache.serve_file(*g, file, [&](bool) { done = true; });
    run_until_flag(fx.sim, done);
    return sim::to_seconds(fx.sim.now() - t0);
  };
  const double uncached = serve();
  const double cached = serve();
  // Uncached pays the disk access (~8 ms seek + ~6 ms transfer).
  EXPECT_GT(uncached, cached * 2.0);
  EXPECT_NEAR(uncached, 0.0188, 0.004);
  EXPECT_NEAR(cached, 0.0052, 0.002);
}

TEST(Services, SshSegmentOutcomeMatrix) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  auto* ssh = static_cast<guest::SshService*>(g.find_service("sshd"));
  const auto gen = ssh->generation();
  EXPECT_EQ(ssh->segment_outcome(g, gen), net::SegmentOutcome::kAck);
  EXPECT_EQ(ssh->segment_outcome(g, gen - 1), net::SegmentOutcome::kRst);

  // Graceful stop -> FIN while the OS still runs.
  bool stopped = false;
  ssh->stop(g, [&] { stopped = true; });
  EXPECT_EQ(ssh->segment_outcome(g, gen), net::SegmentOutcome::kFin);
  run_until_flag(fx.sim, stopped);

  // Restart: old sessions get RST.
  bool started = false;
  ssh->start(g, [&] { started = true; });
  run_until_flag(fx.sim, started);
  EXPECT_EQ(ssh->segment_outcome(g, gen), net::SegmentOutcome::kRst);

  // Suspended OS: dropped.
  bool suspended = false;
  fx.host->vmm().suspend_domain_on_memory(g.domain_id(), [&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  EXPECT_EQ(ssh->segment_outcome(g, ssh->generation()),
            net::SegmentOutcome::kDropped);
}

}  // namespace
}  // namespace rh::test
