// FaultInjector: determinism, zero-rate transparency, accounting.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultKind;

TEST(FaultInjector, DefaultConstructedIsDisabledAndNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.roll(FaultKind::kVmmCrash, i, "x"));
  }
  EXPECT_EQ(inj.total_injected(), std::uint64_t{0});
  EXPECT_TRUE(inj.injected().empty());
}

TEST(FaultInjector, ZeroRateKindNeverDrawsFromTheStream) {
  // Rolling a kind whose rate is zero must leave the stream untouched, so
  // the enabled kinds see the same draw sequence whether or not disabled
  // kinds are polled in between.
  FaultConfig cfg;
  cfg.boot_hang_rate = 0.5;  // enabled; everything else zero
  sim::Rng rng(99);
  FaultInjector plain(cfg, rng.split());

  sim::Rng rng2(99);
  FaultInjector interleaved(cfg, rng2.split());

  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(plain.roll(FaultKind::kGuestBootHang, i, "boot"));
    // Interleave zero-rate polls; they must not shift the stream.
    interleaved.roll(FaultKind::kVmmCrash, i, "crash");
    interleaved.roll(FaultKind::kDiskWriteError, i, "save");
    b.push_back(interleaved.roll(FaultKind::kGuestBootHang, i, "boot"));
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(interleaved.count(FaultKind::kVmmCrash), std::uint64_t{0});
  EXPECT_EQ(interleaved.count(FaultKind::kDiskWriteError), std::uint64_t{0});
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultConfig cfg = FaultConfig::uniform(0.3);
  sim::Rng r1(1234), r2(1234);
  FaultInjector a(cfg, r1.split());
  FaultInjector b(cfg, r2.split());
  const FaultKind kinds[] = {
      FaultKind::kXexecLoadFailure, FaultKind::kDiskReadError,
      FaultKind::kCorruptPreservedImage, FaultKind::kMigrationAbort,
      FaultKind::kGuestBootHang};
  for (int i = 0; i < 200; ++i) {
    const auto k = kinds[i % 5];
    EXPECT_EQ(a.roll(k, i, "p"), b.roll(k, i, "p"));
  }
  EXPECT_EQ(a.schedule_fingerprint(), b.schedule_fingerprint());
  EXPECT_GT(a.total_injected(), std::uint64_t{0});  // 0.3 over 200 rolls
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const FaultConfig cfg = FaultConfig::uniform(0.5);
  sim::Rng r1(1), r2(2);
  FaultInjector a(cfg, r1.split());
  FaultInjector b(cfg, r2.split());
  for (int i = 0; i < 256; ++i) {
    a.roll(FaultKind::kGuestBootHang, i, "p");
    b.roll(FaultKind::kGuestBootHang, i, "p");
  }
  EXPECT_NE(a.schedule_fingerprint(), b.schedule_fingerprint());
}

TEST(FaultInjector, RecordsCarryKindTimeAndSite) {
  FaultConfig cfg;
  cfg.vmm_crash_rate = 1.0;
  sim::Rng rng(7);
  FaultInjector inj(cfg, rng.split());
  EXPECT_TRUE(inj.roll(FaultKind::kVmmCrash, 42, "pre-rejuvenation"));
  ASSERT_EQ(inj.total_injected(), std::uint64_t{1});
  EXPECT_EQ(inj.injected()[0].kind, FaultKind::kVmmCrash);
  EXPECT_EQ(inj.injected()[0].at, 42);
  EXPECT_EQ(inj.injected()[0].where, "pre-rejuvenation");
  EXPECT_EQ(inj.count(FaultKind::kVmmCrash), std::uint64_t{1});
  EXPECT_EQ(inj.count(FaultKind::kGuestBootHang), std::uint64_t{0});
}

TEST(FaultInjector, UniformSetsEveryRate) {
  const FaultConfig cfg = FaultConfig::uniform(0.25);
  for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kCount);
       ++k) {
    EXPECT_DOUBLE_EQ(cfg.rate_of(static_cast<FaultKind>(k)), 0.25);
  }
  EXPECT_TRUE(cfg.enabled());
  EXPECT_FALSE(FaultConfig{}.enabled());
}

TEST(FaultInjector, DisarmedHostLeavesHostRngUntouched) {
  // configure_faults with an all-zero config must not split the host RNG:
  // fault-free runs have to reproduce historical seeds byte-for-byte.
  sim::Simulation sim_a, sim_b;
  vmm::Host a(sim_a, {}, /*seed=*/42);
  vmm::Host b(sim_b, {}, /*seed=*/42);
  a.configure_faults(fault::FaultConfig{});  // disarmed: no split
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.rng().uniform01(), b.rng().uniform01());
  }
  EXPECT_FALSE(a.faults().enabled());
}

TEST(FaultInjector, VmmHangZeroRateNeverDrawsFromTheStream) {
  // The steady-state VMM kinds obey the same zero-draw contract as every
  // other kind: polling them with a zero rate must not shift the stream or
  // the schedule fingerprint of the enabled kinds.
  FaultConfig cfg;
  cfg.boot_hang_rate = 0.5;  // enabled; both steady VMM kinds zero
  sim::Rng r1(99), r2(99);
  FaultInjector plain(cfg, r1.split());
  FaultInjector interleaved(cfg, r2.split());

  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(plain.roll(FaultKind::kGuestBootHang, i, "boot"));
    interleaved.roll(FaultKind::kVmmCrash, i, "steady-state");
    interleaved.roll(FaultKind::kVmmHang, i, "steady-state");
    b.push_back(interleaved.roll(FaultKind::kGuestBootHang, i, "boot"));
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(plain.schedule_fingerprint(), interleaved.schedule_fingerprint());
  EXPECT_EQ(interleaved.count(FaultKind::kVmmCrash), std::uint64_t{0});
  EXPECT_EQ(interleaved.count(FaultKind::kVmmHang), std::uint64_t{0});
}

TEST(SteadyFaultProcess, DisabledRatesScheduleNothingAndDrawNothing) {
  // With both steady rates zero, start() must be a complete no-op: no
  // event on the calendar, no draw, no fingerprint change -- a run that
  // constructs the process but configures no steady faults stays
  // byte-identical to one that never heard of it.
  sim::Simulation sim;
  FaultConfig cfg;
  cfg.boot_hang_rate = 0.5;  // the injector itself is armed
  sim::Rng rng(5);
  FaultInjector inj(cfg, rng.split());
  const std::string before = inj.schedule_fingerprint();

  fault::SteadyFaultProcess steady(sim, inj, {});
  steady.start([](FaultKind) { FAIL() << "no steady fault may fire"; });
  EXPECT_FALSE(steady.armed());
  EXPECT_EQ(sim.pending_events(), std::size_t{0});
  sim.run_until(10 * sim::kHour);
  EXPECT_EQ(inj.schedule_fingerprint(), before);
  EXPECT_EQ(inj.count(FaultKind::kVmmCrash), std::uint64_t{0});
  EXPECT_EQ(inj.count(FaultKind::kVmmHang), std::uint64_t{0});
}

TEST(SteadyFaultProcess, FiresOncePerPauseWindowThenResumes) {
  sim::Simulation sim;
  FaultConfig cfg;
  cfg.vmm_crash_rate = 1.0;
  sim::Rng rng(5);
  FaultInjector inj(cfg, rng.split());
  fault::SteadyFaultProcess steady(sim, inj, {});
  int fires = 0;
  FaultKind last = FaultKind::kCount;
  steady.start([&](FaultKind k) {
    ++fires;
    last = k;
  });
  EXPECT_TRUE(steady.armed());
  sim.run_until(sim.now() + 10 * sim::kMinute);
  // Certain hit on the first check, then paused: no storm of callbacks.
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(last, FaultKind::kVmmCrash);
  EXPECT_FALSE(steady.armed());
  steady.resume();
  EXPECT_TRUE(steady.armed());
  sim.run_until(sim.now() + 10 * sim::kMinute);
  EXPECT_EQ(fires, 2);
}

TEST(SteadyFaultProcess, HangRollsOnlyAfterCrashMisses) {
  sim::Simulation sim;
  FaultConfig cfg;
  cfg.vmm_hang_rate = 1.0;  // crash rate zero: never polled, never drawn
  sim::Rng rng(5);
  FaultInjector inj(cfg, rng.split());
  fault::SteadyFaultProcess steady(sim, inj, {});
  FaultKind last = FaultKind::kCount;
  steady.start([&](FaultKind k) { last = k; });
  sim.run_until(sim.now() + 10 * sim::kMinute);
  EXPECT_EQ(last, FaultKind::kVmmHang);
  EXPECT_EQ(inj.count(FaultKind::kVmmCrash), std::uint64_t{0});
  EXPECT_EQ(inj.count(FaultKind::kVmmHang), std::uint64_t{1});
}

TEST(SteadyFaultProcess, ArrivalScheduleIsAFunctionOfSeedAndRatesOnly) {
  auto arrivals = [](std::uint64_t seed) {
    sim::Simulation sim;
    FaultConfig cfg;
    cfg.vmm_crash_rate = 0.05;
    cfg.vmm_hang_rate = 0.05;
    sim::Rng rng(seed);
    FaultInjector inj(cfg, rng.split());
    fault::SteadyFaultProcess steady(sim, inj, {});
    std::vector<std::pair<sim::SimTime, int>> fired;
    steady.start([&](FaultKind k) {
      fired.emplace_back(sim.now(), static_cast<int>(k));
      steady.resume();
    });
    sim.run_until(4 * sim::kHour);
    return fired;
  };
  EXPECT_EQ(arrivals(11), arrivals(11));
  EXPECT_NE(arrivals(11), arrivals(12));
}

TEST(SteadyFaultProcess, ResumeIsANoOpWhileACheckIsPending) {
  // A recovery driver may resume once for an absorbed arrival *and* once
  // for the ladder that absorbed it; the second resume finds the next
  // check already armed and must not double-schedule or draw.
  sim::Simulation sim;
  FaultConfig cfg;
  cfg.vmm_crash_rate = 1.0;
  sim::Rng rng(5);
  FaultInjector inj(cfg, rng.split());
  fault::SteadyFaultProcess steady(sim, inj, {});
  int fires = 0;
  steady.start([&](FaultKind) { ++fires; });
  ASSERT_TRUE(steady.armed());
  const std::size_t pending = sim.pending_events();
  steady.resume();  // already armed: nothing changes
  EXPECT_TRUE(steady.armed());
  EXPECT_EQ(sim.pending_events(), pending);
  sim.run_until(sim.now() + 10 * sim::kMinute);
  EXPECT_EQ(fires, 1);
  steady.resume();
  steady.resume();  // double resume after a hit: second call is the no-op
  EXPECT_EQ(sim.pending_events(), pending);
  sim.run_until(sim.now() + 10 * sim::kMinute);
  EXPECT_EQ(fires, 2);
}

TEST(SteadyFaultProcess, StopCancelsThePendingCheck) {
  sim::Simulation sim;
  FaultConfig cfg;
  cfg.vmm_crash_rate = 1.0;
  sim::Rng rng(5);
  FaultInjector inj(cfg, rng.split());
  fault::SteadyFaultProcess steady(sim, inj, {});
  steady.start([](FaultKind) { FAIL() << "stopped process fired"; });
  ASSERT_TRUE(steady.armed());
  steady.stop();
  EXPECT_FALSE(steady.armed());
  sim.run_until(sim.now() + 10 * sim::kMinute);
  EXPECT_EQ(inj.count(FaultKind::kVmmCrash), std::uint64_t{0});
}

TEST(FaultInjector, ArmedHostScheduleIsAFunctionOfSeedOnly) {
  auto fingerprint = [](std::uint64_t seed) {
    sim::Simulation sim;
    vmm::Host host(sim, {}, seed);
    host.configure_faults(fault::FaultConfig::uniform(0.4));
    for (int i = 0; i < 100; ++i) {
      host.faults().roll(FaultKind::kGuestBootHang, i, "boot");
    }
    return host.faults().schedule_fingerprint();
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace rh::test
