// Host-level lifecycle: dom0 state machine, reboot primitives, artifact.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(Host, InstantStartBringsEverythingUp) {
  sim::Simulation s;
  vmm::Host host(s, Calibration::paper_testbed());
  EXPECT_FALSE(host.vmm_running());
  EXPECT_FALSE(host.up());
  host.instant_start();
  EXPECT_TRUE(host.up());
  EXPECT_TRUE(host.network_path_up());
  EXPECT_EQ(host.dom0_state(), vmm::Dom0State::kRunning);
  EXPECT_EQ(host.vmm_generation(), std::uint64_t{1});
  EXPECT_EQ(s.now(), 0);
  EXPECT_THROW(host.instant_start(), InvariantViolation);
}

TEST(Host, Dom0ShutdownTimingAndStates) {
  HostFixture fx(0);
  bool down = false;
  const sim::SimTime t0 = fx.sim.now();
  fx.host->shutdown_dom0([&] { down = true; });
  EXPECT_EQ(fx.host->dom0_state(), vmm::Dom0State::kShuttingDown);
  EXPECT_TRUE(fx.host->network_path_up());  // bridge forwards until down
  run_until_flag(fx.sim, down);
  EXPECT_EQ(fx.host->dom0_state(), vmm::Dom0State::kDown);
  EXPECT_FALSE(fx.host->network_path_up());
  EXPECT_FALSE(fx.host->up());
  EXPECT_NEAR(sim::to_seconds(fx.sim.now() - t0), 10.0, 0.01);
  // Cannot shut down twice.
  EXPECT_THROW(fx.host->shutdown_dom0([] {}), InvariantViolation);
}

TEST(Host, QuickReloadTimeline) {
  HostFixture fx(0);
  bool loaded = false;
  fx.host->vmm().xexec_load([&] { loaded = true; });
  run_until_flag(fx.sim, loaded);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  const sim::SimTime t0 = fx.sim.now();
  bool up = false;
  fx.host->quick_reload([&] { up = true; });
  run_until_flag(fx.sim, up);
  // VMM ready ("reboot completed") at ~11.4 s, dom0 userland ~31.5 s later.
  EXPECT_NEAR(sim::to_seconds(fx.host->vmm_ready_at() - t0), 11.4, 0.5);
  EXPECT_NEAR(sim::to_seconds(fx.host->dom0_up_at() - t0), 42.9, 0.8);
  EXPECT_EQ(fx.host->vmm_generation(), std::uint64_t{2});
  EXPECT_TRUE(fx.host->up());
}

TEST(Host, HardwareRebootTakesMuchLonger) {
  HostFixture fx(0);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  const sim::SimTime t0 = fx.sim.now();
  bool up = false;
  fx.host->hardware_reboot([&] { up = true; });
  run_until_flag(fx.sim, up);
  // POST 43.4 + bootloader 5 + VMM ~11.4 + dom0 31.5 ~ 91 s.
  EXPECT_NEAR(sim::to_seconds(fx.sim.now() - t0), 91.0, 2.0);
  EXPECT_EQ(fx.host->machine().reset_count(), std::uint64_t{1});
}

TEST(Host, VmmAccessWhileDownThrows) {
  HostFixture fx(0);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  bool loaded_is_irrelevant = false;
  (void)loaded_is_irrelevant;
  // Take the VMM down via hardware reboot and query mid-flight.
  fx.host->hardware_reboot([] {});
  EXPECT_FALSE(fx.host->vmm_running());
  EXPECT_THROW((void)fx.host->vmm(), InvariantViolation);
  fx.sim.run_for(5 * sim::kMinute);
  EXPECT_TRUE(fx.host->vmm_running());
}

TEST(Host, CreationArtifactWindowAndFactor) {
  HostFixture fx(0);
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 1.0);
  fx.host->note_simultaneous_creations(1);  // one creation: no artifact
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 1.0);
  fx.host->note_simultaneous_creations(5);
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 0.45);
  fx.sim.run_for(24 * sim::kSecond);
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 0.45);
  fx.sim.run_for(2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 1.0);
}

TEST(Host, ArtifactDisabledByCalibration) {
  Calibration calib;
  calib.model_xen_creation_artifact = false;
  HostFixture fx(0, calib);
  fx.host->note_simultaneous_creations(10);
  EXPECT_DOUBLE_EQ(fx.host->throughput_factor(), 1.0);
}

TEST(Host, InvalidCalibrationRejected) {
  sim::Simulation s;
  Calibration bad;
  bad.page_cache_fraction = 1.5;
  EXPECT_THROW(vmm::Host(s, bad), InvariantViolation);
  Calibration bad2;
  bad2.machine.ram = 256 * sim::kMiB;  // cannot hold dom0 + VMM
  EXPECT_THROW(vmm::Host(s, bad2), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
