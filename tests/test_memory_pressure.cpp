// Preserved-memory pressure: budget accounting, admission control and
// per-VM degradation under overcommit (DESIGN.md §9).
//
// The testbed for the supervised tests: three VMs with 2 GiB nominal
// memory booted with a reduced 1 GiB allocation (Xen memory= < maxmem=)
// and a page cache sized to 25 % of nominal, so each VM has ~1028 MiB of
// preserved-frame demand and ~496 MiB of reclaim-safe balloon margin.
// Individual tests pick the preserved-frame budget to land on a specific
// rung of the admission ladder.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/load_balancer.hpp"
#include "exp/runner.hpp"
#include "mm/balloon.hpp"
#include "rejuv/admission.hpp"
#include "rejuv/supervisor.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

Calibration pressure_calib(sim::Bytes preserved_budget) {
  Calibration c;
  c.page_cache_fraction = 0.25;
  c.preserved_frame_budget = preserved_budget / sim::kPageSize;
  return c;
}

guest::GuestOs& add_overcommitted_vm(HostFixture& fx, const std::string& name,
                                     sim::Bytes nominal, sim::Bytes alloc) {
  auto g = std::make_unique<guest::GuestOs>(*fx.host, name, nominal);
  g->add_service(std::make_unique<guest::SshService>());
  g->set_boot_allocation(alloc);
  guest::GuestOs& ref = *g;
  fx.guests.push_back(std::move(g));
  bool up = false;
  ref.create_and_boot([&up] { up = true; });
  fx.sim.run_until(fx.sim.now() + 30 * sim::kMinute);
  EXPECT_TRUE(up) << "VM '" << name << "' failed to boot";
  return ref;
}

/// Three 2-GiB-nominal VMs each booted with a 1 GiB allocation.
void add_standard_vms(HostFixture& fx) {
  for (int i = 0; i < 3; ++i) {
    add_overcommitted_vm(fx, "vm" + std::to_string(i), 2 * sim::kGiB,
                         sim::kGiB);
  }
}

rejuv::SupervisorReport supervise(HostFixture& fx,
                                  rejuv::SupervisorConfig cfg = {}) {
  rejuv::Supervisor sup(*fx.host, fx.guest_ptrs(), cfg);
  bool done = false;
  rejuv::SupervisorReport out;
  sup.run([&](const rejuv::SupervisorReport& r) {
    out = r;
    done = true;
  });
  const sim::SimTime deadline = fx.sim.now() + 12 * sim::kHour;
  while (!done && fx.sim.pending_events() > 0 && fx.sim.now() < deadline) {
    fx.sim.step();
  }
  EXPECT_TRUE(done) << "supervised pass did not complete";
  return out;
}

rejuv::AdmissionConfig enabled_admission() {
  rejuv::AdmissionConfig a;
  a.enabled = true;
  return a;
}

// ------------------------------------------------- allocator mechanics

TEST(MemoryPressure, AllocatorDistinguishesFragmentationFromExhaustion) {
  mm::FrameAllocator alloc(16);
  const auto frames = alloc.allocate(1, 16);
  for (std::size_t i = 0; i < frames.size(); i += 2) alloc.release(frames[i]);
  // 8 frames free, but no two adjacent.
  EXPECT_EQ(alloc.free_frames(), 8);
  EXPECT_EQ(alloc.largest_free_run(), 1);
  EXPECT_GT(alloc.fragmentation(), 0.8);
  try {
    alloc.allocate_contiguous(2, 3);
    FAIL() << "expected OutOfMachineMemory";
  } catch (const mm::OutOfMachineMemory& e) {
    EXPECT_NE(std::string(e.what()).find("fragmented"), std::string::npos);
  }
  // Single-frame runs still work, and the books stay balanced.
  EXPECT_EQ(alloc.allocate_contiguous(2, 1).size(), std::size_t{1});
  EXPECT_TRUE(alloc.accounting_ok());
}

TEST(MemoryPressure, CompactionRestoresContiguousRuns) {
  HostFixture fx;
  add_overcommitted_vm(fx, "vm0", sim::kGiB, sim::kGiB);
  add_overcommitted_vm(fx, "vm1", sim::kGiB, sim::kGiB);
  // Balloon out the tail of vm0: the hole sits between vm0's remaining
  // frames and vm1's range, fragmenting free memory.
  auto* d0 = fx.host->vmm().find_domain_by_name("vm0");
  ASSERT_NE(d0, nullptr);
  mm::BalloonDriver balloon(d0->id(), fx.host->vmm().allocator(), d0->p2m());
  EXPECT_EQ(balloon.inflate(4096), 4096);
  const auto before = fx.host->vmm().allocator().largest_free_run();
  const auto moved = fx.host->vmm().compact_memory();
  EXPECT_GT(moved, 0);
  EXPECT_GT(fx.host->vmm().allocator().largest_free_run(), before);
  const auto report = fx.host->vmm().frame_conservation_report();
  EXPECT_TRUE(report.ok());
  // Compaction moved frames, not state.
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  EXPECT_TRUE(fx.guests[1]->integrity_ok());
}

// ------------------------------------------------- registry accounting

TEST(MemoryPressure, DuplicatePutThrowsAndReplaceOverwritesDeliberately) {
  mm::PreservedRegionRegistry reg;
  mm::PreservedRegion r;
  r.name = "domain/a";
  r.payload.resize(100, std::byte{1});
  reg.put(r);
  // Silent overwrite would leak the old region's frozen frames.
  EXPECT_THROW(reg.put(r), InvariantViolation);
  reg.put({"domain/b", {}, {}, 0});
  // replace() keeps insertion order and restamps the checksum.
  mm::PreservedRegion r2 = r;
  r2.payload.assign(50, std::byte{2});
  reg.replace(r2);
  EXPECT_TRUE(reg.intact("domain/a"));
  const auto names = reg.names();
  ASSERT_EQ(names.size(), std::size_t{2});
  EXPECT_EQ(names[0], "domain/a");
  EXPECT_EQ(names[1], "domain/b");
  // replace() of an absent name is a bug, not an insert.
  mm::PreservedRegion absent;
  absent.name = "domain/missing";
  EXPECT_THROW(reg.replace(absent), InvariantViolation);
}

TEST(MemoryPressure, RegistryBudgetRejectsOverflowAndSurvivesClear) {
  mm::PreservedRegionRegistry reg;
  reg.set_frame_budget(3);
  mm::PreservedRegion r;
  r.name = "a";
  r.payload.resize(2 * sim::kPageSize);  // 2 metadata frames
  r.frozen_frames = {7};                 // + 1 frozen frame
  EXPECT_EQ(mm::PreservedRegionRegistry::frames_of(r), 3);
  reg.put(r);
  EXPECT_EQ(reg.reserved_frames(), 3);
  mm::PreservedRegion over;
  over.name = "b";
  over.frozen_frames = {8};
  EXPECT_THROW(reg.put(over), mm::PreservedBudgetExceeded);
  EXPECT_FALSE(reg.contains("b"));
  // Replacing within the budget is fine: the old record's frames come
  // back before the new ones are charged.
  mm::PreservedRegion smaller = r;
  smaller.payload.resize(sim::kPageSize);
  reg.replace(smaller);
  EXPECT_EQ(reg.reserved_frames(), 2);
  reg.put(over);  // now it fits
  // Power loss destroys contents, not the contract.
  reg.clear();
  EXPECT_EQ(reg.reserved_frames(), 0);
  EXPECT_EQ(reg.frame_budget(), 3);
}

// ------------------------------------------------------ admission plans

TEST(MemoryPressure, PlanFitsUnderUnlimitedBudget) {
  HostFixture fx(0, pressure_calib(0));
  add_standard_vms(fx);
  rejuv::AdmissionController ctl(*fx.host, {});
  const auto plan = ctl.plan(fx.guest_ptrs());
  EXPECT_FALSE(plan.pressured());
  EXPECT_TRUE(plan.reclaims.empty());
  EXPECT_TRUE(plan.demote_saved.empty());
  EXPECT_TRUE(plan.demote_cold.empty());
  EXPECT_EQ(plan.warm.size(), std::size_t{3});
}

TEST(MemoryPressure, PlanCoversMildShortfallByBallooningAlone) {
  HostFixture fx(0, pressure_calib(3000 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::AdmissionController ctl(*fx.host, {});
  const auto plan = ctl.plan(fx.guest_ptrs());
  EXPECT_TRUE(plan.pressured());
  ASSERT_FALSE(plan.reclaims.empty());
  EXPECT_EQ(plan.reclaims.front().guest->name(), "vm0");
  EXPECT_TRUE(plan.demote_saved.empty());
  EXPECT_TRUE(plan.demote_cold.empty());
  EXPECT_EQ(plan.warm.size(), std::size_t{3});
}

TEST(MemoryPressure, PlanDemotesLargestWhenBallooningIsNotEnough) {
  HostFixture fx(0, pressure_calib(1800 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::AdmissionController ctl(*fx.host, {});
  const auto plan = ctl.plan(fx.guest_ptrs());
  EXPECT_TRUE(plan.pressured());
  ASSERT_EQ(plan.demote_saved.size(), std::size_t{1});
  EXPECT_EQ(plan.demote_saved[0]->name(), "vm0");
  EXPECT_TRUE(plan.demote_cold.empty());
  EXPECT_EQ(plan.warm.size(), std::size_t{2});
  // A demoted VM's reclaim would be pointless; only survivors balloon.
  for (const auto& r : plan.reclaims) EXPECT_NE(r.guest->name(), "vm0");
}

TEST(MemoryPressure, PlanFallsToColdBeyondTheSavedDemotionCap) {
  HostFixture fx(0, pressure_calib(1800 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::AdmissionConfig cfg;
  cfg.max_saved_demotions = 0;
  rejuv::AdmissionController ctl(*fx.host, cfg);
  const auto plan = ctl.plan(fx.guest_ptrs());
  EXPECT_TRUE(plan.demote_saved.empty());
  ASSERT_EQ(plan.demote_cold.size(), std::size_t{1});
  EXPECT_EQ(plan.demote_cold[0]->name(), "vm0");

  rejuv::AdmissionConfig no_disk;
  no_disk.demote_to_saved = false;
  const auto plan2 = rejuv::AdmissionController(*fx.host, no_disk)
                         .plan(fx.guest_ptrs());
  EXPECT_TRUE(plan2.demote_saved.empty());
  EXPECT_EQ(plan2.demote_cold.size(), std::size_t{1});
}

TEST(MemoryPressure, ExistingRegionsEatTheAvailableBudget) {
  HostFixture fx(0, pressure_calib(3000 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::AdmissionController ctl(*fx.host, {});
  const auto before = ctl.available_budget_frames();
  mm::PreservedRegion stale;
  stale.name = "stale/old#1";
  stale.payload.resize(8 * sim::kPageSize);
  fx.host->preserved().put(stale);
  EXPECT_EQ(ctl.available_budget_frames(), before - 8);
}

// ------------------------------------------- supervised ladder, rung 1

TEST(MemoryPressure, SupervisedPassBalloonsUnderMildPressureAndStaysWarm) {
  HostFixture fx(0, pressure_calib(3000 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.pressure.consulted);
  EXPECT_TRUE(report.pressure.pressured);
  EXPECT_GT(report.pressure.reclaimed_frames, 0);
  EXPECT_EQ(report.pressure.demoted_saved, std::size_t{0});
  EXPECT_EQ(report.pressure.demoted_cold, std::size_t{0});
  EXPECT_EQ(report.resumed_vms, std::size_t{3});
  EXPECT_GE(report.recovery_count(rejuv::RecoveryAction::kBalloonReclaim),
            std::size_t{1});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
  EXPECT_TRUE(fx.host->vmm().frame_conservation_report().ok());
}

// ---------------------------------------- supervised ladder, rungs 2-3

TEST(MemoryPressure, SupervisedPassDemotesOneVmToDiskUnderHeavyPressure) {
  HostFixture fx(0, pressure_calib(1800 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.pressure.demoted_saved, std::size_t{1});
  EXPECT_EQ(report.resumed_vms, std::size_t{2});
  EXPECT_EQ(report.restored_vms, std::size_t{1});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{0});
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kDemoteToSaved),
            std::size_t{1});
  // The demoted VM took the disk path: state kept, nothing cold-booted.
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(MemoryPressure, SupervisedPassDemotesToColdWhenDiskPathDisallowed) {
  HostFixture fx(0, pressure_calib(1800 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  cfg.admission.demote_to_saved = false;
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.pressure.demoted_saved, std::size_t{0});
  EXPECT_EQ(report.pressure.demoted_cold, std::size_t{1});
  EXPECT_EQ(report.resumed_vms, std::size_t{2});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{1});
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kDemoteToCold),
            std::size_t{1});
  for (auto& g : fx.guests) EXPECT_EQ(g->state(), guest::OsState::kRunning);
}

TEST(MemoryPressure, AbsurdBudgetDemotesEveryVmAndStillRecovers) {
  HostFixture fx(0, pressure_calib(10 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.pressure.demoted_saved, std::size_t{3});
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  EXPECT_EQ(report.restored_vms, std::size_t{3});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(MemoryPressure, CompactionPassRunsBeforeSuspendWhenRequested) {
  HostFixture fx(0, pressure_calib(3000 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  cfg.admission.compact_before_suspend = true;
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  // Admission ballooned pages out of the middle of the VMs' ranges, so
  // compaction has real holes to squeeze out.
  EXPECT_GT(report.pressure.compacted_frames, 0);
  EXPECT_GE(report.recovery_count(rejuv::RecoveryAction::kCompactionPass),
            std::size_t{1});
  EXPECT_EQ(report.resumed_vms, std::size_t{3});
  EXPECT_TRUE(fx.host->vmm().frame_conservation_report().ok());
}

// ----------------------------------------- admission-disabled hygiene

TEST(MemoryPressure, DisabledAdmissionDrawsNothingAndConsultsNothing) {
  HostFixture fx(0, pressure_calib(0));
  add_standard_vms(fx);
  const auto report = supervise(fx, {});
  EXPECT_TRUE(report.success);
  EXPECT_FALSE(report.pressure.consulted);
  EXPECT_EQ(report.resumed_vms, std::size_t{3});
  EXPECT_TRUE(report.recoveries.empty());
  // No faults configured, admission disabled: the pass must not have
  // touched the host RNG's fault substream at all.
  EXPECT_EQ(fx.host->faults().total_injected(), std::uint64_t{0});
  EXPECT_TRUE(fx.host->faults().schedule_fingerprint().empty());
}

TEST(MemoryPressure, PressuredPassWithZeroRatesDrawsNoFaults) {
  HostFixture fx(0, pressure_calib(1800 * sim::kMiB));
  add_standard_vms(fx);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.pressure.pressured);
  // roll() at rate 0 never draws: the whole ladder ran without touching
  // the fault substream.
  EXPECT_TRUE(fx.host->faults().schedule_fingerprint().empty());
}

// ----------------------------------------------------- new fault kinds

TEST(MemoryPressure, FrameAllocFailureLosesOnlyThatImage) {
  HostFixture fx(0, pressure_calib(0));
  add_standard_vms(fx);
  fault::FaultConfig faults;
  faults.frame_alloc_failure_rate = 1.0;
  fx.host->configure_faults(faults);
  const auto report = supervise(fx, {});
  EXPECT_TRUE(report.success);
  // Every suspend failed to allocate its image; every VM lost RAM state
  // and cold-booted, but the pass itself kept going.
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{3});
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kPreservedImageLost),
            std::size_t{3});
  EXPECT_TRUE(fx.host->preserved().empty());
  for (auto& g : fx.guests) EXPECT_EQ(g->state(), guest::OsState::kRunning);
}

TEST(MemoryPressure, BudgetRejectionAtSuspendDegradesLikeALostImage) {
  // Admission disabled, budget far too small: the registry refuses the
  // images at suspend time, and the resume phase treats the VMs exactly
  // like the injected allocation failure -- per-VM cold boot, no crash.
  HostFixture fx(0, pressure_calib(10 * sim::kMiB));
  add_standard_vms(fx);
  const auto report = supervise(fx, {});
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kPreservedImageLost),
            std::size_t{3});
  for (auto& g : fx.guests) EXPECT_EQ(g->state(), guest::OsState::kRunning);
}

TEST(MemoryPressure, BalloonReclaimFailureEscalatesToDemotion) {
  HostFixture fx(0, pressure_calib(3000 * sim::kMiB));
  add_standard_vms(fx);
  fault::FaultConfig faults;
  faults.balloon_reclaim_failure_rate = 1.0;
  fx.host->configure_faults(faults);
  rejuv::SupervisorConfig cfg;
  cfg.admission = enabled_admission();
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  // The planned reclaim would have covered the shortfall, but it failed;
  // the residual escalated into a demotion instead of a lost image.
  EXPECT_EQ(report.pressure.reclaimed_frames, 0);
  EXPECT_GE(report.pressure.demoted_saved, std::size_t{1});
  EXPECT_GE(report.recovery_count(rejuv::RecoveryAction::kBalloonReclaim),
            std::size_t{1});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(MemoryPressure, LeakedRegionsParkAsStaleAndEatTheBudget) {
  HostFixture fx(0, pressure_calib(0));
  add_standard_vms(fx);
  fault::FaultConfig faults;
  faults.image_corruption_rate = 1.0;      // every image rots...
  faults.preserved_region_leak_rate = 1.0; // ...and every discard leaks
  fx.host->configure_faults(faults);
  const auto report = supervise(fx, {});
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.cold_booted_vms, std::size_t{3});
  // The corrupt images could not be released: they survive as stale/*
  // records whose frames stay reserved against future budgets.
  std::size_t stale = 0;
  for (const auto& name : fx.host->preserved().names()) {
    if (name.rfind("stale/", 0) == 0) ++stale;
  }
  EXPECT_EQ(stale, std::size_t{3});
  EXPECT_GT(fx.host->preserved().reserved_frames(), 0);
  EXPECT_TRUE(fx.host->vmm().frame_conservation_report().ok());
  rejuv::AdmissionController ctl(*fx.host, {});
  EXPECT_LT(ctl.available_budget_frames() + fx.host->preserved().reserved_frames(),
            fx.host->vmm().allocator().total_frames());
}

// ------------------------------------- ballooned sibling + corruption

TEST(MemoryPressure, CorruptBalloonedVmColdBootsWhileBalloonedSiblingsResume) {
  HostFixture fx(0, pressure_calib(0));
  add_standard_vms(fx);
  // Partially balloon every VM (as an admission pass would).
  for (auto& g : fx.guests) {
    auto* d = fx.host->vmm().find_domain_by_name(g->name());
    ASSERT_NE(d, nullptr);
    mm::BalloonDriver balloon(d->id(), fx.host->vmm().allocator(), d->p2m());
    EXPECT_EQ(balloon.inflate(8192), 8192);
  }
  // Manual warm cycle so the corruption lands between suspend and reload.
  bool loaded = false;
  fx.host->vmm().xexec_load([&] { loaded = true; });
  run_until_flag(fx.sim, loaded);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  fx.host->preserved().corrupt_payload("domain/vm1");
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  bool up = false;
  fx.host->quick_reload([&] { up = true; });
  run_until_flag(fx.sim, up);

  EXPECT_TRUE(fx.host->vmm().frame_conservation_report().ok());
  EXPECT_TRUE(fx.host->vmm().preserved_image_intact("vm0"));
  EXPECT_FALSE(fx.host->vmm().preserved_image_intact("vm1"));
  EXPECT_TRUE(fx.host->vmm().preserved_image_intact("vm2"));
  for (const char* name : {"vm0", "vm2"}) {
    guest::GuestOs* g = name == std::string("vm0") ? fx.guests[0].get()
                                                   : fx.guests[2].get();
    bool resumed = false;
    fx.host->vmm().resume_domain_on_memory(name, g,
                                           [&](DomainId) { resumed = true; });
    run_until_flag(fx.sim, resumed);
    EXPECT_TRUE(g->integrity_ok());
    // The balloon holes survived the round trip.
    EXPECT_EQ(fx.host->vmm().find_domain_by_name(name)->p2m().populated(),
              262144 - 8192);
  }
  // vm1 cold-boots alone.
  fx.guests[1]->force_power_off();
  bool booted = false;
  fx.guests[1]->create_and_boot([&] { booted = true; });
  run_until_flag(fx.sim, booted);
  EXPECT_EQ(fx.guests[1]->state(), guest::OsState::kRunning);
  EXPECT_TRUE(fx.host->vmm().frame_conservation_report().ok());
}

// ------------------------------------------- reduced-allocation boots

TEST(MemoryPressure, ReducedAllocationBootPopulatesOnlyTheWorkingSet) {
  HostFixture fx(0, pressure_calib(0));
  auto& g = add_overcommitted_vm(fx, "thin", 2 * sim::kGiB, sim::kGiB);
  const auto* d = fx.host->vmm().find_domain_by_name("thin");
  ASSERT_NE(d, nullptr);
  // P2M spans the nominal size; only the working set is populated.
  EXPECT_EQ(d->p2m().pfn_count(), 2 * sim::kGiB / sim::kPageSize);
  EXPECT_EQ(d->p2m().populated(), sim::kGiB / sim::kPageSize);
  EXPECT_TRUE(g.integrity_ok());
  // A save/restore round trip keeps the reduced allocation.
  bool saved = false;
  fx.host->vmm().save_domain_to_disk(g.domain_id(), fx.host->images(),
                                     [&] { saved = true; });
  run_until_flag(fx.sim, saved);
  bool restored = false;
  fx.host->vmm().restore_domain_from_disk("thin", fx.host->images(), &g,
                                          [&](DomainId) { restored = true; });
  run_until_flag(fx.sim, restored);
  const auto* d2 = fx.host->vmm().find_domain_by_name("thin");
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->p2m().populated(), sim::kGiB / sim::kPageSize);
  EXPECT_TRUE(g.integrity_ok());
}

// ----------------------------------------------------------- cluster

TEST(MemoryPressure, BalancerStopsPlacingOnPressuredHostsButFallsBack) {
  sim::Simulation sim;
  vmm::Host host_a(sim, {}, 42);
  vmm::Host host_b(sim, {}, 43);
  host_a.instant_start();
  host_b.instant_start();
  cluster::LoadBalancer balancer;
  std::vector<std::unique_ptr<guest::GuestOs>> guests;
  std::vector<guest::ApacheService*> apaches;
  for (vmm::Host* host : {&host_a, &host_b}) {
    auto g = std::make_unique<guest::GuestOs>(
        *host, host == &host_a ? "web-a" : "web-b", sim::kGiB);
    g->add_service(std::make_unique<guest::ApacheService>());
    g->vfs().create_file("doc", sim::kMiB);
    bool up = false;
    g->create_and_boot([&up] { up = true; });
    run_until_flag(sim, up);
    auto* apache =
        static_cast<guest::ApacheService*>(g->find_service("httpd"));
    balancer.add_backend({g.get(), apache, {0}});
    apaches.push_back(apache);
    guests.push_back(std::move(g));
  }
  const auto serve_one = [&] {
    bool done = false, ok = false;
    balancer.dispatch([&](bool served) {
      ok = served;
      done = true;
    });
    run_until_flag(sim, done);
    return ok;
  };
  // Unpressured: round-robin spreads over both hosts.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(serve_one());
  EXPECT_EQ(apaches[0]->requests_served(), 2);
  EXPECT_EQ(apaches[1]->requests_served(), 2);
  // Pressured host A stops receiving placements...
  balancer.set_host_pressured(&host_a, true);
  EXPECT_EQ(balancer.pressured_backends(), std::size_t{1});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(serve_one());
  EXPECT_EQ(apaches[0]->requests_served(), 2);
  EXPECT_EQ(apaches[1]->requests_served(), 6);
  // ...but is a fallback, not an eviction: with host B down, traffic
  // returns to A instead of being rejected.
  guests[1]->force_power_off();
  EXPECT_TRUE(serve_one());
  EXPECT_EQ(apaches[0]->requests_served(), 3);
  EXPECT_EQ(balancer.rejected(), std::uint64_t{0});
  // Clearing the mark restores normal placement.
  balancer.set_host_pressured(&host_a, false);
  EXPECT_EQ(balancer.pressured_backends(), std::size_t{0});
  EXPECT_TRUE(serve_one());
  EXPECT_EQ(apaches[0]->requests_served(), 4);
}

TEST(MemoryPressure, SupervisedRollingPassMarksPressuredHosts) {
  sim::Simulation sim;
  cluster::Cluster::Config cfg;
  cfg.hosts = 2;
  cfg.vms_per_host = 2;
  cfg.files_per_vm = 5;
  cfg.calib.preserved_frame_budget = 1536 * sim::kMiB / sim::kPageSize;
  cluster::Cluster cl(sim, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready && sim.pending_events() > 0) sim.step();
  ASSERT_TRUE(ready);

  cluster::Cluster::SupervisionConfig sup;
  sup.supervisor.admission.enabled = true;
  bool done = false;
  cluster::Cluster::RollingReport report;
  cl.rolling_rejuvenation_supervised(
      sup, [&](const cluster::Cluster::RollingReport& r) {
        report = r;
        done = true;
      });
  while (!done && sim.pending_events() > 0) sim.step();
  ASSERT_TRUE(done);
  // Both hosts completed their pass (degraded, not evicted)...
  EXPECT_TRUE(report.fully_recovered());
  EXPECT_TRUE(report.evicted_hosts.empty());
  for (const auto& pass : report.passes) {
    EXPECT_TRUE(pass.success);
    EXPECT_TRUE(pass.pressure.pressured);
  }
  // ...and both are marked pressured: still in service as a fallback,
  // but no longer preferred for new placements.
  EXPECT_EQ(report.pressured_hosts, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(cl.balancer().pressured_backends(), std::size_t{4});
  EXPECT_EQ(cl.balancer().evicted_backends(), std::size_t{0});
  EXPECT_EQ(cl.balancer().reachable_backends(), std::size_t{4});
}

// ---------------------------------------------------------- determinism

/// One replication of a pressured, faulty supervised pass exercising all
/// three new fault kinds, reduced to scalars (same scheme as
/// test_failure_injection.cpp).
exp::ReplicationResult pressured_pass_body(const exp::ReplicationContext& ctx) {
  sim::Simulation sim;
  vmm::Host host(sim, pressure_calib(1900 * sim::kMiB), ctx.seed);
  host.instant_start();
  std::vector<std::unique_ptr<guest::GuestOs>> guests;
  std::vector<guest::GuestOs*> ptrs;
  for (int i = 0; i < 3; ++i) {
    guests.push_back(std::make_unique<guest::GuestOs>(
        host, "vm" + std::to_string(i), 2 * sim::kGiB));
    guests.back()->add_service(std::make_unique<guest::SshService>());
    guests.back()->set_boot_allocation(sim::kGiB);
    bool up = false;
    guests.back()->create_and_boot([&up] { up = true; });
    sim.run_until(sim.now() + sim::kHour);
    EXPECT_TRUE(up);
    ptrs.push_back(guests.back().get());
  }
  fault::FaultConfig faults;
  faults.preserved_region_leak_rate = 0.6;
  faults.frame_alloc_failure_rate = 0.4;
  faults.balloon_reclaim_failure_rate = 0.6;
  faults.image_corruption_rate = 0.4;  // feeds the leak's discard path
  host.configure_faults(faults);
  rejuv::SupervisorConfig cfg;
  cfg.admission.enabled = true;
  rejuv::Supervisor sup(host, ptrs, cfg);
  bool done = false;
  sup.run([&done](const rejuv::SupervisorReport&) { done = true; });
  const sim::SimTime deadline = sim.now() + 12 * sim::kHour;
  while (!done && sim.pending_events() > 0 && sim.now() < deadline) {
    sim.step();
  }
  EXPECT_TRUE(done);

  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : host.faults().schedule_fingerprint()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  const auto& r = sup.report();
  exp::ReplicationResult out;
  out.values = {static_cast<double>(h >> 32),
                static_cast<double>(h & 0xffffffffu),
                static_cast<double>(host.faults().total_injected()),
                sim::to_seconds(r.total_duration()),
                static_cast<double>(r.resumed_vms),
                static_cast<double>(r.restored_vms),
                static_cast<double>(r.cold_booted_vms),
                static_cast<double>(r.pressure.reclaimed_frames),
                static_cast<double>(r.pressure.demoted_saved +
                                    r.pressure.demoted_cold)};
  return out;
}

TEST(MemoryPressure, NewFaultKindsAreByteIdenticalAcrossRunnerThreads) {
  exp::GridSpec spec;
  spec.points = 2;
  spec.replications = 3;
  spec.root_seed = 11;
  spec.threads = 1;
  const auto serial = exp::run_grid(spec, pressured_pass_body);
  spec.threads = 4;
  const auto parallel = exp::run_grid(spec, pressured_pass_body);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    const auto& a = serial.point(p);
    const auto& b = parallel.point(p);
    ASSERT_EQ(a.metrics().size(), b.metrics().size());
    for (std::size_t m = 0; m < a.metrics().size(); ++m) {
      EXPECT_EQ(a.mean(m), b.mean(m)) << "point " << p << " metric " << m;
      EXPECT_EQ(a.ci95(m), b.ci95(m)) << "point " << p << " metric " << m;
    }
  }
  // The new kinds actually fired, or this proves nothing.
  double injected = 0;
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    injected += serial.point(p).mean(2);
  }
  EXPECT_GT(injected, 0.0);
}

}  // namespace
}  // namespace rh::test
