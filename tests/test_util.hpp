// Shared test fixtures and helpers.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "guest/apache.hpp"
#include "guest/guest_os.hpp"
#include "guest/jboss.hpp"
#include "guest/sshd.hpp"
#include "rejuv/reboot_driver.hpp"
#include "vmm/host.hpp"

namespace rh::test {

/// A started host plus `n` booted 1-GiB VMs, each running sshd.
class HostFixture {
 public:
  explicit HostFixture(int vms = 0, Calibration calib = {},
                       sim::Bytes vm_memory = sim::kGiB) {
    host = std::make_unique<vmm::Host>(sim, calib, /*seed=*/42);
    host->instant_start();
    for (int i = 0; i < vms; ++i) add_vm("vm" + std::to_string(i), vm_memory);
  }

  /// Adds a VM with sshd and boots it to completion (advances sim time).
  guest::GuestOs& add_vm(const std::string& name, sim::Bytes memory) {
    auto g = std::make_unique<guest::GuestOs>(*host, name, memory);
    g->add_service(std::make_unique<guest::SshService>());
    guest::GuestOs& ref = *g;
    guests.push_back(std::move(g));
    bool up = false;
    ref.create_and_boot([&up] { up = true; });
    sim.run_until(sim.now() + 30 * sim::kMinute);
    EXPECT_TRUE(up) << "VM '" << name << "' failed to boot";
    return ref;
  }

  [[nodiscard]] std::vector<guest::GuestOs*> guest_ptrs() {
    std::vector<guest::GuestOs*> out;
    for (auto& g : guests) out.push_back(g.get());
    return out;
  }

  /// Runs a full rejuvenation with the given driver kind; returns the
  /// driver (completed). Advances simulated time.
  std::unique_ptr<rejuv::RebootDriver> rejuvenate(rejuv::RebootKind kind) {
    auto driver = rejuv::make_reboot_driver(kind, *host, guest_ptrs());
    bool done = false;
    driver->run([&done] { done = true; });
    sim.run_until(sim.now() + 2 * sim::kHour);
    EXPECT_TRUE(done) << "rejuvenation did not complete";
    return driver;
  }

  sim::Simulation sim;
  std::unique_ptr<vmm::Host> host;
  std::vector<std::unique_ptr<guest::GuestOs>> guests;
};

/// Runs `sim` until `flag` is true or `budget` elapses; asserts the flag.
inline void run_until_flag(sim::Simulation& sim, const bool& flag,
                           sim::Duration budget = sim::kHour) {
  const sim::SimTime deadline = sim.now() + budget;
  while (!flag && sim.pending_events() > 0 && sim.now() < deadline) {
    sim.step();
  }
  ASSERT_TRUE(flag) << "condition not reached within budget";
}

}  // namespace rh::test
