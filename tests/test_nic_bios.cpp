#include <gtest/gtest.h>

#include "hw/bios.hpp"
#include "hw/machine.hpp"
#include "hw/nic.hpp"
#include "simcore/simulation.hpp"

namespace rh::test {
namespace {

TEST(Nic, TransferTimingIncludesOverhead) {
  sim::Simulation s;
  hw::Nic nic(s, {100.0e6, 50});
  sim::SimTime done_at = 0;
  nic.transmit(100'000'000, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, sim::kSecond + 50);
}

TEST(Nic, TransfersShareBandwidthFifo) {
  sim::Simulation s;
  hw::Nic nic(s, {100.0e6, 0});
  sim::SimTime t1 = 0, t2 = 0;
  nic.transmit(50'000'000, [&] { t1 = s.now(); });
  nic.transmit(50'000'000, [&] { t2 = s.now(); });
  s.run();
  EXPECT_EQ(t1, sim::kSecond / 2);
  EXPECT_EQ(t2, sim::kSecond);
  EXPECT_EQ(nic.bytes_sent(), 100'000'000);
  EXPECT_EQ(nic.packets_sent(), std::uint64_t{2});
}

TEST(Bios, PostScalesWithInstalledRam) {
  const hw::Bios bios(hw::BiosModel{8 * sim::kSecond, 3 * sim::kSecond,
                                    2700 * sim::kMillisecond});
  const auto post12 = bios.post_duration(12 * sim::kGiB);
  const auto post2 = bios.post_duration(2 * sim::kGiB);
  // The paper's testbed: POST(12 GiB) ~ 43 s.
  EXPECT_NEAR(sim::to_seconds(post12), 43.4, 0.1);
  // 10 GiB less RAM saves 27 s of memory check.
  EXPECT_NEAR(sim::to_seconds(post12 - post2), 27.0, 0.1);
}

TEST(Machine, HardwareResetGoesThroughPost) {
  sim::Simulation s;
  hw::MachineSpec spec;
  spec.ram = 2 * sim::kGiB;
  hw::Machine m(s, spec);
  m.memory().write(0, 42);
  EXPECT_EQ(m.power_state(), hw::PowerState::kRunning);
  sim::SimTime post_done = 0;
  m.hardware_reset([&] { post_done = s.now(); });
  EXPECT_EQ(m.power_state(), hw::PowerState::kPost);
  // Memory dies at reset time, not at POST completion.
  EXPECT_EQ(m.memory().read(0), hw::kScrubbed);
  s.run();
  EXPECT_EQ(post_done, m.bios().post_duration(spec.ram));
  EXPECT_EQ(m.reset_count(), std::uint64_t{1});
  m.set_running();
  EXPECT_EQ(m.power_state(), hw::PowerState::kRunning);
}

}  // namespace
}  // namespace rh::test
