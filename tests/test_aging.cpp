// Software aging of the VMM (Sec. 2): heap leaks accumulate across domain
// lifecycle events until the VMM fails; rejuvenation resets the damage.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(Aging, DomainCyclesLeakHeap) {
  Calibration calib;
  calib.heap_leak_per_domain_cycle = 64 * sim::kKiB;
  HostFixture fx(0, calib);
  auto& vmm = fx.host->vmm();
  const auto leaked_before = vmm.heap().leaked();
  for (int i = 0; i < 10; ++i) {
    const DomainId id = vmm.create_domain_now("d", 16 * sim::kMiB, nullptr);
    vmm.destroy_domain(id);
  }
  EXPECT_EQ(vmm.heap().leaked() - leaked_before, 10 * 64 * sim::kKiB);
}

TEST(Aging, EnoughCyclesExhaustTheHeap) {
  // 16 MiB heap / 64 KiB per cycle = 256 cycles to total exhaustion; the
  // failure appears as a VmmHeapExhausted on a later create -- the "crash
  // failure of the VMM" the paper motivates with.
  Calibration calib;
  calib.heap_leak_per_domain_cycle = 64 * sim::kKiB;
  HostFixture fx(0, calib);
  auto& vmm = fx.host->vmm();
  bool failed = false;
  int cycles = 0;
  try {
    for (; cycles < 400; ++cycles) {
      const DomainId id = vmm.create_domain_now("d", 16 * sim::kMiB, nullptr);
      vmm.destroy_domain(id);
    }
  } catch (const vmm::VmmHeapExhausted&) {
    failed = true;
  }
  EXPECT_TRUE(failed);
  EXPECT_GT(cycles, 200);
  EXPECT_LT(cycles, 280);
}

TEST(Aging, NoLeakNoAging) {
  HostFixture fx(0);  // default calibration: leak-free
  auto& vmm = fx.host->vmm();
  for (int i = 0; i < 1000; ++i) {
    const DomainId id = vmm.create_domain_now("d", 16 * sim::kMiB, nullptr);
    vmm.destroy_domain(id);
  }
  EXPECT_EQ(vmm.heap().leaked(), 0);
}

TEST(Aging, WarmRebootRejuvenatesTheHeap) {
  Calibration calib;
  calib.heap_leak_per_domain_cycle = 256 * sim::kKiB;
  HostFixture fx(2, calib);
  auto& vmm = fx.host->vmm();
  for (int i = 0; i < 20; ++i) {
    const DomainId id = vmm.create_domain_now("churn", 16 * sim::kMiB, nullptr);
    vmm.destroy_domain(id);
  }
  const double pressure_before = vmm.heap().pressure();
  EXPECT_GT(pressure_before, 0.3);

  fx.rejuvenate(rejuv::RebootKind::kWarm);

  // The new VMM instance has a fresh heap; the leaked memory is gone --
  // and the guests never noticed.
  EXPECT_EQ(fx.host->vmm().heap().leaked(), 0);
  EXPECT_LT(fx.host->vmm().heap().pressure(), pressure_before);
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(Aging, PressureVisibleToMonitoring) {
  Calibration calib;
  calib.heap_leak_per_domain_cycle = sim::kMiB;
  HostFixture fx(0, calib);
  auto& vmm = fx.host->vmm();
  const double p0 = vmm.heap().pressure();
  for (int i = 0; i < 4; ++i) {
    const DomainId id = vmm.create_domain_now("d", 16 * sim::kMiB, nullptr);
    vmm.destroy_domain(id);
  }
  EXPECT_NEAR(vmm.heap().pressure() - p0, 4.0 / 16.0, 0.01);
}

}  // namespace
}  // namespace rh::test
