#include <gtest/gtest.h>

#include "mm/preserved_registry.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

mm::PreservedRegion make_region(const std::string& name, std::size_t payload,
                                std::vector<hw::FrameNumber> frames) {
  mm::PreservedRegion r;
  r.name = name;
  r.payload.assign(payload, std::byte{0x5a});
  r.frozen_frames = std::move(frames);
  return r;
}

TEST(PreservedRegistry, PutFindErase) {
  mm::PreservedRegionRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.put(make_region("domain/a", 100, {1, 2, 3}));
  ASSERT_NE(reg.find("domain/a"), nullptr);
  EXPECT_EQ(reg.find("domain/a")->frozen_frames.size(), std::size_t{3});
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_TRUE(reg.erase("domain/a"));
  EXPECT_FALSE(reg.erase("domain/a"));
  EXPECT_TRUE(reg.empty());
}

TEST(PreservedRegistry, PutRejectsDuplicatesAndReplaceOverwrites) {
  mm::PreservedRegionRegistry reg;
  reg.put(make_region("x", 10, {1}));
  // A silent overwrite would leak the old region's frozen frames (still
  // claimed in the allocator, nobody left to release them), so put() on
  // an existing name refuses; replace() is the deliberate overwrite.
  EXPECT_THROW(reg.put(make_region("x", 20, {2, 3})), InvariantViolation);
  EXPECT_EQ(reg.find("x")->payload.size(), std::size_t{10});
  reg.replace(make_region("x", 20, {2, 3}));
  EXPECT_EQ(reg.size(), std::size_t{1});
  EXPECT_EQ(reg.find("x")->payload.size(), std::size_t{20});
  EXPECT_TRUE(reg.intact("x"));
  EXPECT_EQ(reg.names(), std::vector<std::string>{"x"});
  // replace() of an absent name is a bug, not an insert.
  EXPECT_THROW(reg.replace(make_region("y", 5, {})), InvariantViolation);
}

TEST(PreservedRegistry, NamesKeepInsertionOrder) {
  mm::PreservedRegionRegistry reg;
  reg.put(make_region("c", 1, {}));
  reg.put(make_region("a", 1, {}));
  reg.put(make_region("b", 1, {}));
  reg.erase("a");
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"c", "b"}));
}

TEST(PreservedRegistry, AggregatesFrozenFramesAndPayload) {
  mm::PreservedRegionRegistry reg;
  reg.put(make_region("a", 100, {1, 2}));
  reg.put(make_region("b", 50, {7}));
  EXPECT_EQ(reg.all_frozen_frames(),
            (std::vector<hw::FrameNumber>{1, 2, 7}));
  EXPECT_EQ(reg.payload_bytes(), 150);
}

TEST(PreservedRegistry, ClearModelsPowerLoss) {
  mm::PreservedRegionRegistry reg;
  reg.put(make_region("a", 10, {1}));
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.payload_bytes(), 0);
  EXPECT_TRUE(reg.names().empty());
}

TEST(PreservedRegistry, RejectsUnnamedRegion) {
  mm::PreservedRegionRegistry reg;
  EXPECT_THROW(reg.put(make_region("", 1, {})), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
