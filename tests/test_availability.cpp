// Section 5.3's availability arithmetic.
#include <gtest/gtest.h>

#include "rejuv/availability.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

rejuv::AvailabilityParams paper_params(double vmm_downtime, bool includes_os) {
  rejuv::AvailabilityParams p;
  p.os_downtime_s = 33.6;
  p.vmm_downtime_s = vmm_downtime;
  p.alpha = 0.5;
  p.vmm_reboot_includes_os = includes_os;
  return p;
}

TEST(Availability, PaperNumbersReproduce) {
  // warm 42 s -> 99.993 %, cold 241 s -> 99.985 %, saved 429 s -> 99.977 %.
  EXPECT_NEAR(rejuv::availability(paper_params(42, false)) * 100, 99.9927, 0.0005);
  EXPECT_NEAR(rejuv::availability(paper_params(241, true)) * 100, 99.9852, 0.0005);
  EXPECT_NEAR(rejuv::availability(paper_params(429, false)) * 100, 99.9767, 0.0005);
}

TEST(Availability, NinesMatchPaperClaim) {
  EXPECT_EQ(rejuv::count_nines(rejuv::availability(paper_params(42, false))), 4);
  EXPECT_EQ(rejuv::count_nines(rejuv::availability(paper_params(241, true))), 3);
  EXPECT_EQ(rejuv::count_nines(rejuv::availability(paper_params(429, false))), 3);
}

TEST(Availability, ExpectedDowntimeComposition) {
  // warm: 4 OS rejuvenations + the VMM one.
  EXPECT_NEAR(rejuv::expected_downtime_s(paper_params(42, false)),
              4 * 33.6 + 42, 1e-9);
  // cold: the VMM reboot replaces alpha of one OS rejuvenation.
  EXPECT_NEAR(rejuv::expected_downtime_s(paper_params(241, true)),
              3.5 * 33.6 + 241, 1e-9);
}

TEST(Availability, ValidatesInput) {
  auto p = paper_params(42, false);
  p.os_interval = 3 * sim::kDay;  // not a divisor of 4 weeks
  EXPECT_THROW((void)rejuv::availability(p), InvariantViolation);
  p = paper_params(42, false);
  p.alpha = 0.0;
  EXPECT_THROW((void)rejuv::availability(p), InvariantViolation);
}

TEST(Availability, CountNines) {
  EXPECT_EQ(rejuv::count_nines(0.9), 1);
  EXPECT_EQ(rejuv::count_nines(0.99), 2);
  EXPECT_EQ(rejuv::count_nines(0.9995), 3);
  EXPECT_EQ(rejuv::count_nines(0.0), 0);
  EXPECT_EQ(rejuv::count_nines(0.5), 0);
  EXPECT_THROW((void)rejuv::count_nines(1.0), InvariantViolation);
}

TEST(Availability, Formatting) {
  EXPECT_EQ(rejuv::format_availability(0.99993), "99.993 %");
}

}  // namespace
}  // namespace rh::test
