// Steady faults at datacenter scale (DESIGN.md §14): per-host steady
// fault arrivals answered by reusable recovery drivers, crash-evict /
// readmit membership riding the sharded balancer, failure-reactive wave
// admission (unplanned outages count against the downtime budget), and
// the session fleet's planned-vs-unplanned downtime attribution.
#include <cstdint>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/session_fleet.hpp"
#include "cluster/sharded_balancer.hpp"

namespace rh::test {
namespace {

// Sequential sharded cluster with steady VMM faults armed at `rate`.
struct CrashRig {
  static cluster::Cluster::Config config(int hosts, int shards, double rate) {
    cluster::Cluster::Config c;
    c.hosts = hosts;
    c.shards = shards;
    c.vms_per_host = 1;
    c.files_per_vm = 8;
    c.file_size = 64 * sim::kKiB;
    c.faults.vmm_crash_rate = rate;
    return c;
  }

  sim::Simulation sim;
  cluster::Cluster cl;

  CrashRig(int hosts, int shards, double rate)
      : cl(sim, config(hosts, shards, rate)) {
    bool ready = false;
    cl.start([&ready] { ready = true; });
    while (!ready && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(ready);
  }
};

TEST(SteadyFaultsAtScale, CrashRecoverReadmitCycleKeepsTheFleetWhole) {
  CrashRig rig(2, 2, /*rate=*/1.0);
  cluster::Cluster::SteadyFaultsConfig sfc;
  sfc.process.check_interval = sim::kSecond;
  sfc.supervisor.micro.enabled = true;
  sfc.supervisor.micro.success_rate = 1.0;  // every hit recovers in place
  rig.cl.start_steady_faults(sfc);

  rig.sim.run_for(10 * sim::kSecond);
  // Disarming stops new arrivals; in-flight ladders drain out, after
  // which every failure has a matching recovery and readmission.
  rig.cl.stop_steady_faults();
  rig.sim.run_for(10 * sim::kSecond);
  const auto& rep = rig.cl.unplanned_report();
  // Certain hit on every check: both hosts cycled through crash ->
  // micro-recover -> readmit repeatedly.
  EXPECT_GT(rep.failures, std::uint64_t{4});
  EXPECT_EQ(rep.recoveries, rep.failures);
  EXPECT_EQ(rep.micro_recoveries, rep.recoveries);
  EXPECT_EQ(rep.unrecovered, std::uint64_t{0});
  EXPECT_GT(rep.downtime, sim::Duration{0});
  // Every eviction was matched by a readmission.
  EXPECT_EQ(rig.cl.unplanned_down_hosts(), std::size_t{0});
  EXPECT_EQ(rig.cl.sharded_balancer()->crashed_backends(), std::size_t{0});
  EXPECT_EQ(rig.cl.sharded_balancer()->crash_broadcasts(),
            2 * rep.recoveries);

  // And no further arrivals fire once disarmed.
  const std::uint64_t before = rep.failures;
  rig.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(rig.cl.unplanned_report().failures, before);
}

TEST(SteadyFaultsAtScale, WaveAdmissionPausesUntilCrashBudgetFrees) {
  // Micro-recovery disabled: a crash takes the legacy hardware reboot, so
  // both hosts are down for minutes of sim time after the first check.
  CrashRig rig(2, 2, /*rate=*/1.0);
  cluster::Cluster::SteadyFaultsConfig sfc;
  sfc.process.check_interval = 500 * sim::kMillisecond;
  rig.cl.start_steady_faults(sfc);
  rig.sim.run_for(2 * sim::kSecond);
  ASSERT_EQ(rig.cl.unplanned_down_hosts(), std::size_t{2});

  // With every host crash-down, the unplanned outages exhaust the budget:
  // the wave must pause instead of admitting turns onto dead hosts.
  bool done = false;
  cluster::Cluster::WaveConfig wcfg;
  wcfg.wave_size = 1;
  wcfg.max_concurrent_down = 1;
  rig.cl.rolling_rejuvenation_waves(
      wcfg, [&done](const cluster::Cluster::WaveReport&) { done = true; });
  EXPECT_FALSE(done);
  EXPECT_GE(rig.cl.last_wave_report().admission_pauses, std::size_t{1});

  // While the steady process keeps striking every 500 ms, some host is
  // crash-down essentially always, so the budget never frees: the wave
  // starves rather than admit a turn it has no downtime budget for.
  rig.sim.run_for(10 * sim::kMinute);
  EXPECT_FALSE(done);

  // Once the fault source dries up, the last recovery's kick replans the
  // remaining order from the live outcomes and the pass completes.
  rig.cl.stop_steady_faults();
  rig.sim.run_for(30 * sim::kMinute);
  EXPECT_TRUE(done);
  const auto& report = rig.cl.last_wave_report();
  EXPECT_EQ(report.hosts_rejuvenated + report.unrecovered_hosts.size(),
            std::size_t{2});
  EXPECT_GT(report.planned_downtime, sim::Duration{0});
  // Unplanned ladders ran alongside the planned pass the whole time.
  EXPECT_GT(rig.cl.unplanned_report().failures, std::uint64_t{0});
}

TEST(SteadyFaultsAtScale, FaultsDuringAnOwnedLadderAreAbsorbed) {
  // One host, so the planned wave pass owns it while steady arrivals keep
  // landing: the recovery driver must absorb them instead of stacking a
  // second ladder onto the host (the PR-8 overlap guard).
  CrashRig rig(1, 1, /*rate=*/1.0);
  cluster::Cluster::SteadyFaultsConfig sfc;
  sfc.process.check_interval = sim::kSecond;
  sfc.supervisor.micro.enabled = true;
  sfc.supervisor.micro.success_rate = 1.0;
  rig.cl.start_steady_faults(sfc);

  bool done = false;
  cluster::Cluster::WaveConfig wcfg;
  wcfg.wave_size = 1;
  rig.cl.rolling_rejuvenation_waves(
      wcfg, [&done](const cluster::Cluster::WaveReport&) { done = true; });
  rig.sim.run_for(5 * sim::kMinute);
  EXPECT_TRUE(done);
  rig.cl.stop_steady_faults();
  rig.sim.run_for(10 * sim::kSecond);  // drain the last in-flight ladder
  const auto& rep = rig.cl.unplanned_report();
  EXPECT_GT(rep.absorbed, std::uint64_t{0});
  EXPECT_EQ(rep.failures, rep.recoveries + rep.unrecovered);
}

TEST(SteadyFaultsAtScale, FleetSplitsPlannedFromUnplannedDowntime) {
  CrashRig rig(2, 2, /*rate=*/0.0);
  cluster::SessionFleet fleet(*rig.cl.sharded_balancer(),
                              {.sessions = 16,
                               .think_base = 1 * sim::kSecond,
                               .think_spread = 1 * sim::kSecond,
                               .retry_interval = 500 * sim::kMillisecond,
                               .tick = 250 * sim::kMillisecond});
  fleet.start(rig.sim);
  rig.sim.run_for(3 * sim::kSecond);
  fleet.begin_window(rig.sim.now());

  // First outage: a planned drain (admin eviction of every backend).
  rig.cl.sharded_balancer()->set_host_evicted(0, true);
  rig.cl.sharded_balancer()->set_host_evicted(1, true);
  rig.sim.run_for(4 * sim::kSecond);
  rig.cl.sharded_balancer()->set_host_evicted(0, false);
  rig.cl.sharded_balancer()->set_host_evicted(1, false);
  rig.sim.run_for(6 * sim::kSecond);
  const auto planned = fleet.stats(rig.sim.now());
  EXPECT_GT(planned.planned_downtime, sim::Duration{0});
  EXPECT_EQ(planned.unplanned_downtime, sim::Duration{0});

  // Second outage: the same shape, but the shards know their backends are
  // crash-down, so the downtime lands in the unplanned column.
  rig.cl.sharded_balancer()->set_host_crashed(0, true);
  rig.cl.sharded_balancer()->set_host_crashed(1, true);
  rig.sim.run_for(4 * sim::kSecond);
  rig.cl.sharded_balancer()->set_host_crashed(0, false);
  rig.cl.sharded_balancer()->set_host_crashed(1, false);
  rig.sim.run_for(6 * sim::kSecond);
  fleet.stop();
  const auto both = fleet.stats(rig.sim.now());
  EXPECT_GT(both.unplanned_downtime, sim::Duration{0});
  EXPECT_EQ(both.planned_downtime, planned.planned_downtime);
  // The split is an attribution, not extra downtime: the columns sum to
  // what the availability accounting already charges.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(both.planned_downtime + both.unplanned_downtime),
      both.session_downtime.mean() * 16.0);
}

}  // namespace
}  // namespace rh::test
