// Cluster: analytic throughput model + DES load balancer + rolling rejuv.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(ClusterModel, TimelinesMatchFig9Shape) {
  cluster::ClusterThroughputParams p;  // defaults: paper's numbers, m=4
  cluster::ClusterThroughputModel model(p);
  using S = cluster::ClusterStrategy;
  // During the warm reboot: (m-1)p; after: m*p.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kWarm, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kWarm, 43.0), 4.0);
  // Cold: longer dip, then the (m - delta)p cache-refill shoulder.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 244.0), 4.0 - 0.69);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 250.0), 4.0);
  // Migration: permanently (m-1)p, worse while migrating.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kLiveMigration, 100.0), 3.0 - 0.12);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kLiveMigration, 1500.0), 3.0);
}

TEST(ClusterModel, WarmLosesLeastWork) {
  cluster::ClusterThroughputModel model({});
  using S = cluster::ClusterStrategy;
  const double warm = model.lost_work(S::kWarm, 1800);
  const double cold = model.lost_work(S::kCold, 1800);
  const double mig = model.lost_work(S::kLiveMigration, 1800);
  EXPECT_LT(warm, cold);
  EXPECT_LT(cold, mig);  // the reserved host dominates over 30 min
  EXPECT_NEAR(warm, 42.0, 1.0);
}

TEST(ClusterModel, SeriesCoversAllStrategies) {
  cluster::ClusterThroughputModel model({});
  const auto series = model.series(300.0, 10.0);
  ASSERT_EQ(series.size(), std::size_t{31});
  for (const auto& pt : series) {
    EXPECT_GT(pt.warm, 0.0);
    EXPECT_GE(pt.warm, pt.cold - 1e-9);  // warm never worse than cold
  }
}

TEST(ClusterModel, Validation) {
  cluster::ClusterThroughputParams p;
  p.hosts = 1;
  EXPECT_THROW(cluster::ClusterThroughputModel{p}, InvariantViolation);
}

// ------------------------------------------------------------------ DES

struct ClusterRig {
  sim::Simulation sim;
  cluster::Cluster cl;

  explicit ClusterRig(int hosts = 2, int vms = 2)
      : cl(sim, {hosts, vms, sim::kGiB, 20, 512 * sim::kKiB, {}}) {
    bool ready = false;
    cl.start([&ready] { ready = true; });
    while (!ready && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(ready);
  }
};

TEST(Cluster, StartBringsAllBackendsUp) {
  ClusterRig rig;
  EXPECT_EQ(rig.cl.balancer().backend_count(), std::size_t{4});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{4});
  for (int h = 0; h < 2; ++h) {
    EXPECT_TRUE(rig.cl.host(h).up());
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(rig.cl.guest(h, v).state(), guest::OsState::kRunning);
    }
  }
}

TEST(Cluster, BalancerSkipsUnreachableBackends) {
  ClusterRig rig;
  // Take host 0 down (dom0 shutdown kills its network path).
  bool down = false;
  rig.cl.host(0).shutdown_dom0([&down] { down = true; });
  while (!down) rig.sim.step();
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{2});
  int served = 0;
  for (int i = 0; i < 10; ++i) {
    rig.cl.balancer().dispatch([&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 10);  // host 1 carried everything
}

TEST(Cluster, DispatchFailsOnlyWhenAllDown) {
  ClusterRig rig(1, 1);
  bool down = false;
  rig.cl.host(0).shutdown_dom0([&down] { down = true; });
  while (!down) rig.sim.step();
  bool ok = true;
  rig.cl.balancer().dispatch([&](bool served) { ok = served; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.cl.balancer().rejected(), std::uint64_t{1});
}

TEST(Cluster, RollingWarmRejuvenationKeepsServiceAvailable) {
  ClusterRig rig;
  cluster::ClusterClientFleet fleet(rig.sim, rig.cl.balancer(), {});
  fleet.start();
  rig.sim.run_for(10 * sim::kSecond);
  bool done = false;
  rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) rig.sim.step();
  rig.sim.run_for(10 * sim::kSecond);
  fleet.stop();
  // Two hosts rejuvenated sequentially (~50 s each) -- throughout, the
  // other host kept answering: there is never a window with zero backends.
  ASSERT_EQ(rig.cl.rejuvenation_durations().size(), std::size_t{2});
  for (const auto d : rig.cl.rejuvenation_durations()) {
    EXPECT_NEAR(sim::to_seconds(d), 52.0, 8.0);
  }
  EXPECT_EQ(rig.cl.balancer().rejected(), std::uint64_t{0});
  // All guests everywhere survived with state intact.
  for (int h = 0; h < 2; ++h) {
    for (int v = 0; v < 2; ++v) {
      EXPECT_TRUE(rig.cl.guest(h, v).integrity_ok());
      EXPECT_EQ(rig.cl.guest(h, v).state(), guest::OsState::kRunning);
    }
  }
}

TEST(Cluster, GuestsOfValidatesIndex) {
  ClusterRig rig;
  EXPECT_THROW((void)rig.cl.host(5), InvariantViolation);
  EXPECT_THROW((void)rig.cl.guest(0, 9), InvariantViolation);
  EXPECT_EQ(rig.cl.guests_of(0).size(), std::size_t{2});
}

}  // namespace
}  // namespace rh::test
