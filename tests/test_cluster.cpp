// Cluster: analytic throughput model + DES load balancer + rolling rejuv.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(ClusterModel, TimelinesMatchFig9Shape) {
  cluster::ClusterThroughputParams p;  // defaults: paper's numbers, m=4
  cluster::ClusterThroughputModel model(p);
  using S = cluster::ClusterStrategy;
  // During the warm reboot: (m-1)p; after: m*p.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kWarm, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kWarm, 43.0), 4.0);
  // Cold: longer dip, then the (m - delta)p cache-refill shoulder.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 244.0), 4.0 - 0.69);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kCold, 250.0), 4.0);
  // Migration: permanently (m-1)p, worse while migrating.
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kLiveMigration, 100.0), 3.0 - 0.12);
  EXPECT_DOUBLE_EQ(model.throughput_at(S::kLiveMigration, 1500.0), 3.0);
}

TEST(ClusterModel, WarmLosesLeastWork) {
  cluster::ClusterThroughputModel model({});
  using S = cluster::ClusterStrategy;
  const double warm = model.lost_work(S::kWarm, 1800);
  const double cold = model.lost_work(S::kCold, 1800);
  const double mig = model.lost_work(S::kLiveMigration, 1800);
  EXPECT_LT(warm, cold);
  EXPECT_LT(cold, mig);  // the reserved host dominates over 30 min
  EXPECT_NEAR(warm, 42.0, 1.0);
}

TEST(ClusterModel, SeriesCoversAllStrategies) {
  cluster::ClusterThroughputModel model({});
  const auto series = model.series(300.0, 10.0);
  ASSERT_EQ(series.size(), std::size_t{31});
  for (const auto& pt : series) {
    EXPECT_GT(pt.warm, 0.0);
    EXPECT_GE(pt.warm, pt.cold - 1e-9);  // warm never worse than cold
  }
}

TEST(ClusterModel, Validation) {
  cluster::ClusterThroughputParams p;
  p.hosts = 1;
  EXPECT_THROW(cluster::ClusterThroughputModel{p}, InvariantViolation);
}

// ------------------------------------------------------------------ DES

struct ClusterRig {
  static cluster::Cluster::Config config(int hosts, int vms) {
    cluster::Cluster::Config c;
    c.hosts = hosts;
    c.vms_per_host = vms;
    c.files_per_vm = 20;
    return c;
  }

  sim::Simulation sim;
  cluster::Cluster cl;

  explicit ClusterRig(int hosts = 2, int vms = 2)
      : cl(sim, config(hosts, vms)) {
    bool ready = false;
    cl.start([&ready] { ready = true; });
    while (!ready && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(ready);
  }
};

TEST(Cluster, StartBringsAllBackendsUp) {
  ClusterRig rig;
  EXPECT_EQ(rig.cl.balancer().backend_count(), std::size_t{4});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{4});
  for (int h = 0; h < 2; ++h) {
    EXPECT_TRUE(rig.cl.host(h).up());
    for (int v = 0; v < 2; ++v) {
      EXPECT_EQ(rig.cl.guest(h, v).state(), guest::OsState::kRunning);
    }
  }
}

TEST(Cluster, BalancerSkipsUnreachableBackends) {
  ClusterRig rig;
  // Take host 0 down (dom0 shutdown kills its network path).
  bool down = false;
  rig.cl.host(0).shutdown_dom0([&down] { down = true; });
  while (!down) rig.sim.step();
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{2});
  int served = 0;
  for (int i = 0; i < 10; ++i) {
    rig.cl.balancer().dispatch([&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 10);  // host 1 carried everything
}

TEST(Cluster, DispatchFailsOnlyWhenAllDown) {
  ClusterRig rig(1, 1);
  bool down = false;
  rig.cl.host(0).shutdown_dom0([&down] { down = true; });
  while (!down) rig.sim.step();
  bool ok = true;
  rig.cl.balancer().dispatch([&](bool served) { ok = served; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.cl.balancer().rejected(), std::uint64_t{1});
}

TEST(Cluster, RollingWarmRejuvenationKeepsServiceAvailable) {
  ClusterRig rig;
  cluster::ClusterClientFleet fleet(rig.sim, rig.cl.balancer(), {});
  fleet.start();
  rig.sim.run_for(10 * sim::kSecond);
  bool done = false;
  rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) rig.sim.step();
  rig.sim.run_for(10 * sim::kSecond);
  fleet.stop();
  // Two hosts rejuvenated sequentially (~50 s each) -- throughout, the
  // other host kept answering: there is never a window with zero backends.
  ASSERT_EQ(rig.cl.rejuvenation_durations().size(), std::size_t{2});
  for (const auto d : rig.cl.rejuvenation_durations()) {
    EXPECT_NEAR(sim::to_seconds(d), 52.0, 8.0);
  }
  EXPECT_EQ(rig.cl.balancer().rejected(), std::uint64_t{0});
  // All guests everywhere survived with state intact.
  for (int h = 0; h < 2; ++h) {
    for (int v = 0; v < 2; ++v) {
      EXPECT_TRUE(rig.cl.guest(h, v).integrity_ok());
      EXPECT_EQ(rig.cl.guest(h, v).state(), guest::OsState::kRunning);
    }
  }
}

TEST(Cluster, GuestsOfValidatesIndex) {
  ClusterRig rig;
  EXPECT_THROW((void)rig.cl.host(5), InvariantViolation);
  EXPECT_THROW((void)rig.cl.guest(0, 9), InvariantViolation);
  EXPECT_EQ(rig.cl.guests_of(0).size(), std::size_t{2});
}

TEST(Cluster, OverlappingRollingPassesAreRejected) {
  // A second rolling pass while one is in flight would silently drop the
  // first pass's driver mid-reboot; it must fail fast instead.
  ClusterRig rig;
  bool done = false;
  rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  EXPECT_TRUE(rig.cl.rolling_in_progress());
  EXPECT_THROW(
      rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [] {}),
      InvariantViolation);
  EXPECT_THROW(rig.cl.rolling_rejuvenation_supervised({}, [](auto&) {}),
               InvariantViolation);
  while (!done) rig.sim.step();
  EXPECT_FALSE(rig.cl.rolling_in_progress());
  // Once the pass finished, a new one is welcome again.
  bool again = false;
  rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&again] { again = true; });
  while (!again) rig.sim.step();
  EXPECT_TRUE(again);
}

TEST(Cluster, SupervisedRollingPassIsCleanWithoutFaults) {
  ClusterRig rig;
  bool done = false;
  cluster::Cluster::RollingReport report;
  rig.cl.rolling_rejuvenation_supervised(
      {}, [&](const cluster::Cluster::RollingReport& r) {
        report = r;
        done = true;
      });
  while (!done) rig.sim.step();
  EXPECT_TRUE(report.fully_recovered());
  ASSERT_EQ(report.passes.size(), std::size_t{2});  // one per host, no retries
  for (const auto& pass : report.passes) {
    EXPECT_TRUE(pass.success);
    EXPECT_EQ(pass.resumed_vms, std::size_t{2});
  }
  EXPECT_TRUE(report.evicted_hosts.empty());
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{0});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{4});
}

TEST(Cluster, SupervisedRollingEvictsFailedHostAndRetriesIt) {
  ClusterRig rig;
  // Host 1's boots will hang forever (until the operator intervenes).
  fault::FaultConfig faults;
  faults.boot_hang_rate = 1.0;
  rig.cl.host(1).configure_faults(faults);

  cluster::Cluster::SupervisionConfig cfg;
  cfg.supervisor.preferred = rejuv::RebootKind::kCold;
  cfg.supervisor.max_step_retries = 0;
  bool done = false;
  cluster::Cluster::RollingReport report;
  rig.cl.rolling_rejuvenation_supervised(
      cfg, [&](const cluster::Cluster::RollingReport& r) {
        report = r;
        done = true;
      });
  // Step until host 1's ladder exhausts and it is evicted mid-pass...
  while (!done && rig.cl.balancer().evicted_backends() == 0) rig.sim.step();
  ASSERT_FALSE(done);
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{2});
  // ...the balancer keeps serving from host 0 in the meantime...
  int served = 0;
  for (int i = 0; i < 8; ++i) {
    rig.cl.balancer().dispatch([&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 8);
  // ...then the root cause is fixed, and the end-of-pass retry succeeds.
  rig.cl.host(1).configure_faults(fault::FaultConfig{});
  while (!done) rig.sim.step();

  EXPECT_TRUE(report.fully_recovered());
  ASSERT_EQ(report.evicted_hosts, (std::vector<std::size_t>{1}));
  EXPECT_EQ(report.recovered_hosts, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(report.failed_hosts.empty());
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{0});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{4});
  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(rig.cl.guest(1, v).state(), guest::OsState::kRunning);
  }
}

TEST(Cluster, SupervisedRollingGivesUpAfterHostRetryBudget) {
  ClusterRig rig;
  fault::FaultConfig faults;
  faults.boot_hang_rate = 1.0;  // never fixed this time
  rig.cl.host(0).configure_faults(faults);

  cluster::Cluster::SupervisionConfig cfg;
  cfg.supervisor.preferred = rejuv::RebootKind::kCold;
  cfg.supervisor.max_step_retries = 0;
  cfg.max_host_retries = 1;
  bool done = false;
  cluster::Cluster::RollingReport report;
  rig.cl.rolling_rejuvenation_supervised(
      cfg, [&](const cluster::Cluster::RollingReport& r) {
        report = r;
        done = true;
      });
  while (!done) rig.sim.step();
  EXPECT_FALSE(report.fully_recovered());
  EXPECT_EQ(report.evicted_hosts, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report.failed_hosts, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(report.recovered_hosts.empty());
  // The dead host stays out of rotation; the healthy one still serves.
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{2});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{2});
  // Initial pass on each host + 2 recovery attempts on host 0.
  EXPECT_EQ(report.passes.size(), std::size_t{4});
}

TEST(Cluster, EvictionExcludesBackendsFromDispatchUntilLifted) {
  ClusterRig rig;
  rig.cl.balancer().set_host_evicted(&rig.cl.host(0), true);
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{2});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{2});
  int served = 0;
  for (int i = 0; i < 6; ++i) {
    rig.cl.balancer().dispatch([&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 6);  // host 1 carried everything
  rig.cl.balancer().set_host_evicted(&rig.cl.host(0), false);
  EXPECT_EQ(rig.cl.balancer().evicted_backends(), std::size_t{0});
  EXPECT_EQ(rig.cl.balancer().reachable_backends(), std::size_t{4});
}

}  // namespace
}  // namespace rh::test
