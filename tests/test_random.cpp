#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/random.hpp"

namespace rh::test {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  sim::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  sim::Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(r.uniform_int(5, 4), InvariantViolation);
}

TEST(Rng, ExponentialMeanIsRight) {
  sim::Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMeanAndSpread) {
  sim::Rng r(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, NormalDurationClampsAtMin) {
  sim::Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_duration(10, 1000, 0), 0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  sim::Rng r(19);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, IndexStaysInBounds) {
  sim::Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), std::size_t{7});
  EXPECT_THROW(r.index(0), InvariantViolation);
}

TEST(Rng, ShuffleIsAPermutation) {
  sim::Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  sim::Rng a(31);
  sim::Rng child = a.split();
  // Child continues deterministically but differs from the parent.
  sim::Rng a2(31);
  sim::Rng child2 = a2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next(), child2.next());
  EXPECT_NE(child.next(), a.next());
}

}  // namespace
}  // namespace rh::test
