#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/random.hpp"

namespace rh::test {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  sim::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  sim::Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(r.uniform_int(5, 4), InvariantViolation);
}

TEST(Rng, ExponentialMeanIsRight) {
  sim::Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMeanAndSpread) {
  sim::Rng r(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, NormalDurationClampsAtMin) {
  sim::Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_duration(10, 1000, 0), 0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  sim::Rng r(19);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, IndexStaysInBounds) {
  sim::Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), std::size_t{7});
  EXPECT_THROW(r.index(0), InvariantViolation);
}

TEST(Rng, ShuffleIsAPermutation) {
  sim::Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  sim::Rng a(31);
  sim::Rng child = a.split();
  // Child continues deterministically but differs from the parent.
  sim::Rng a2(31);
  sim::Rng child2 = a2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next(), child2.next());
  EXPECT_NE(child.next(), a.next());
}

TEST(Rng, KthSplitIsDeterministicUnderFixedRootSeed) {
  // The replication runner derives substream k by walking split() k times
  // from the root; that walk must depend only on the root seed.
  sim::Rng root1(777), root2(777);
  for (int k = 0; k < 16; ++k) {
    sim::Rng s1 = root1.split();
    sim::Rng s2 = root2.split();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(s1.next(), s2.next());
  }
}

/// Pearson correlation of paired uniform01 draws from two generators.
double stream_correlation(sim::Rng& a, sim::Rng& b, int n) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double nn = n;
  const double cov = sxy / nn - (sx / nn) * (sy / nn);
  const double vx = sxx / nn - (sx / nn) * (sx / nn);
  const double vy = syy / nn - (sy / nn) * (sy / nn);
  return cov / std::sqrt(vx * vy);
}

TEST(Rng, SiblingSubstreamsAreUncorrelated) {
  // The substream-independence contract: across the first 10k draws,
  // sibling splits show no pairwise correlation (|r| stays at the
  // ~1/sqrt(n) noise floor; we allow 0.05).
  sim::Rng root(42);
  std::vector<sim::Rng> siblings;
  for (int k = 0; k < 6; ++k) siblings.push_back(root.split());
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    for (std::size_t j = i + 1; j < siblings.size(); ++j) {
      sim::Rng a = siblings[i];
      sim::Rng b = siblings[j];
      EXPECT_LT(std::abs(stream_correlation(a, b, 10000)), 0.05)
          << "siblings " << i << " and " << j;
    }
  }
}

TEST(Rng, ParentAndChildAreUncorrelated) {
  sim::Rng parent(42);
  sim::Rng child = parent.split();
  EXPECT_LT(std::abs(stream_correlation(parent, child, 10000)), 0.05);
}

TEST(Rng, NestedSplitsAreUncorrelated) {
  // Grid usage: per-point substreams each split per-replication children.
  sim::Rng root(7);
  sim::Rng p0 = root.split();
  sim::Rng p1 = root.split();
  sim::Rng r00 = p0.split();
  sim::Rng r10 = p1.split();
  EXPECT_LT(std::abs(stream_correlation(r00, r10, 10000)), 0.05);
}

}  // namespace
}  // namespace rh::test
