#include <gtest/gtest.h>

#include "mm/balloon.hpp"

namespace rh::test {
namespace {

struct BalloonRig {
  mm::FrameAllocator alloc{1000};
  mm::P2mTable p2m{100};
  mm::BalloonDriver balloon{1, alloc, p2m};

  BalloonRig() {
    const auto frames = alloc.allocate(1, 100);
    for (mm::Pfn p = 0; p < 100; ++p) p2m.add(p, frames[static_cast<std::size_t>(p)]);
  }
};

TEST(Balloon, InflateReturnsFramesToVmm) {
  BalloonRig rig;
  EXPECT_EQ(rig.balloon.inflate(30), 30);
  EXPECT_EQ(rig.p2m.populated(), 70);
  EXPECT_EQ(rig.balloon.ballooned_pages(), 30);
  EXPECT_EQ(rig.alloc.owned_frames(1), 70);
  EXPECT_EQ(rig.alloc.free_frames(), 930);
  // Highest PFNs were released first.
  EXPECT_TRUE(rig.p2m.is_hole(99));
  EXPECT_FALSE(rig.p2m.is_hole(0));
}

TEST(Balloon, DeflateRepopulatesHoles) {
  BalloonRig rig;
  rig.balloon.inflate(30);
  EXPECT_EQ(rig.balloon.deflate(10), 10);
  EXPECT_EQ(rig.p2m.populated(), 80);
  EXPECT_EQ(rig.alloc.owned_frames(1), 80);
  EXPECT_EQ(rig.balloon.ballooned_pages(), 20);
}

TEST(Balloon, InflateBeyondPopulatedIsBounded) {
  BalloonRig rig;
  EXPECT_EQ(rig.balloon.inflate(1000), 100);
  EXPECT_EQ(rig.p2m.populated(), 0);
  EXPECT_EQ(rig.alloc.owned_frames(1), 0);
}

TEST(Balloon, DeflateBeyondHolesIsBounded) {
  BalloonRig rig;
  rig.balloon.inflate(10);
  EXPECT_EQ(rig.balloon.deflate(50), 10);
  EXPECT_EQ(rig.balloon.ballooned_pages(), 0);
}

TEST(Balloon, DeflateIsPartialSuccessSafeWhenVmmIsOut) {
  mm::FrameAllocator alloc(100);
  mm::P2mTable p2m(100);
  mm::BalloonDriver balloon(1, alloc, p2m);
  const auto frames = alloc.allocate(1, 100);
  for (mm::Pfn p = 0; p < 100; ++p) p2m.add(p, frames[static_cast<std::size_t>(p)]);
  balloon.inflate(50);
  alloc.allocate(2, 45);  // another domain takes most of the freed memory
  // Only 5 frames remain: deflate gives back what it can get, never
  // throws, and never leaves the P2M half-updated.
  EXPECT_EQ(balloon.deflate(10), 5);
  EXPECT_EQ(p2m.populated(), 55);
  // That used up the last free frame: deflate is now a clean no-op.
  EXPECT_EQ(alloc.free_frames(), 0);
  EXPECT_EQ(balloon.deflate(10), 0);
  EXPECT_EQ(p2m.populated(), 55);
}

TEST(Balloon, RoundTripRestoresFullPopulation) {
  BalloonRig rig;
  rig.balloon.inflate(40);
  rig.balloon.deflate(40);
  EXPECT_EQ(rig.p2m.populated(), 100);
  for (mm::Pfn p = 0; p < 100; ++p) EXPECT_FALSE(rig.p2m.is_hole(p));
}

}  // namespace
}  // namespace rh::test
