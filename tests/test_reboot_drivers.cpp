// End-to-end reboot drivers: downtime ordering, state outcomes, TCP
// session survival (Fig. 6 and Sec. 5.3 in miniature).
#include <gtest/gtest.h>

#include <memory>

#include "net/tcp.hpp"
#include "test_util.hpp"
#include "workload/prober.hpp"

namespace rh::test {
namespace {

/// Measures the ssh downtime of guest 0 across a rejuvenation.
sim::Duration measure_downtime(HostFixture& fx, rejuv::RebootKind kind) {
  auto& g = *fx.guests[0];
  auto* ssh = g.find_service("sshd");
  workload::Prober prober(fx.sim, {}, [&] { return g.service_reachable(*ssh); });
  prober.start();
  fx.sim.run_for(2 * sim::kSecond);
  const sim::SimTime reboot_start = fx.sim.now();
  auto driver = fx.rejuvenate(kind);
  fx.sim.run_for(5 * sim::kSecond);
  prober.stop();
  const auto outage = prober.outage_after(reboot_start);
  EXPECT_TRUE(outage.has_value()) << "no outage observed?";
  return outage.value_or(0);
}

TEST(RebootDrivers, WarmLeavesGuestsRunningWithoutReboot) {
  HostFixture fx(2);
  const auto boot_generation = fx.guests[0]->find_service("sshd")->generation();
  auto driver = fx.rejuvenate(rejuv::RebootKind::kWarm);
  EXPECT_TRUE(driver->completed());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
    // Services were never restarted.
    EXPECT_EQ(g->find_service("sshd")->generation(), boot_generation);
  }
  // No hardware reset happened.
  EXPECT_EQ(fx.host->machine().reset_count(), std::uint64_t{0});
}

TEST(RebootDrivers, ColdRestartsEverything) {
  HostFixture fx(2);
  const auto boot_generation = fx.guests[0]->find_service("sshd")->generation();
  auto driver = fx.rejuvenate(rejuv::RebootKind::kCold);
  EXPECT_TRUE(driver->completed());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_EQ(g->find_service("sshd")->generation(), boot_generation + 1);
  }
  EXPECT_EQ(fx.host->machine().reset_count(), std::uint64_t{1});
}

TEST(RebootDrivers, SavedRoundTripsThroughDisk) {
  HostFixture fx(2);
  const auto disk_written_before = fx.host->machine().disk().busy_time();
  auto driver = fx.rejuvenate(rejuv::RebootKind::kSaved);
  EXPECT_TRUE(driver->completed());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    // Services survived inside the image (not restarted).
    EXPECT_EQ(g->find_service("sshd")->generation(), std::uint64_t{1});
  }
  // Save files were consumed.
  EXPECT_TRUE(fx.host->images().empty());
  // The disk did serious work (2 x 1 GiB out + back, ~13 s each way min.).
  EXPECT_GT(fx.host->machine().disk().busy_time() - disk_written_before,
            sim::from_seconds(40.0));
  EXPECT_EQ(fx.host->machine().reset_count(), std::uint64_t{1});
}

TEST(RebootDrivers, DowntimeOrderingMatchesFig6) {
  // warm << cold << saved, with the paper's rough magnitudes for n=2.
  sim::Duration warm = 0, saved = 0, cold = 0;
  {
    HostFixture fx(2);
    warm = measure_downtime(fx, rejuv::RebootKind::kWarm);
  }
  {
    HostFixture fx(2);
    cold = measure_downtime(fx, rejuv::RebootKind::kCold);
  }
  {
    HostFixture fx(2);
    saved = measure_downtime(fx, rejuv::RebootKind::kSaved);
  }
  EXPECT_LT(warm, cold);
  EXPECT_LT(cold, saved);
  // Warm downtime is ~40 s regardless of n; cold is >= 100 s with the
  // hardware reset; saved is the worst.
  EXPECT_NEAR(sim::to_seconds(warm), 40.0, 8.0);
  EXPECT_GT(sim::to_seconds(cold), 90.0);
  EXPECT_GT(sim::to_seconds(saved), sim::to_seconds(cold) + 30.0);
}

TEST(RebootDrivers, BreakdownRecordsAllSteps) {
  HostFixture fx(1);
  auto driver = fx.rejuvenate(rejuv::RebootKind::kWarm);
  const auto& steps = driver->breakdown();
  ASSERT_EQ(steps.size(), std::size_t{5});
  EXPECT_EQ(steps[0].label, "load xexec image");
  EXPECT_EQ(steps[1].label, "dom0 shutdown");
  EXPECT_EQ(steps[2].label, "on-memory suspend");
  EXPECT_EQ(steps[3].label, "quick reload + VMM/dom0 boot");
  EXPECT_EQ(steps[4].label, "on-memory resume");
  // Steps are contiguous and ordered.
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].start, steps[i - 1].end);
  }
  // The on-memory suspend is nearly instant; the dom0 shutdown is the
  // paper's 10 s.
  EXPECT_LT(steps[2].duration(), sim::kSecond);
  EXPECT_NEAR(sim::to_seconds(steps[1].duration()), 10.0, 1.0);
}

// ------------------------------------------------------------ TCP (5.3)

class TcpSessionTest : public ::testing::Test {
 protected:
  /// Builds a keepalive TCP session against guest 0's sshd.
  std::unique_ptr<net::TcpConnection> make_session(HostFixture& fx,
                                                   sim::Duration client_timeout) {
    auto& g = *fx.guests[0];
    auto* ssh = static_cast<guest::SshService*>(g.find_service("sshd"));
    const auto gen = ssh->generation();
    net::TcpConnection::Config cfg;
    cfg.client_timeout = client_timeout;
    auto conn = std::make_unique<net::TcpConnection>(
        fx.sim, cfg, [&g, ssh, gen] { return ssh->segment_outcome(g, gen); });
    conn->open();
    return conn;
  }
};

TEST_F(TcpSessionTest, SurvivesWarmRebootViaRetransmission) {
  HostFixture fx(1);
  auto conn = make_session(fx, /*client_timeout=*/0);
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  fx.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(conn->state(), net::TcpState::kEstablished);
  EXPECT_GT(conn->retransmissions(), std::uint64_t{0});
  // The observed outage matches the warm downtime (~40 s).
  EXPECT_NEAR(sim::to_seconds(conn->longest_outage()), 40.0, 15.0);
}

TEST_F(TcpSessionTest, SixtySecondClientTimeoutKillsSessionDuringSavedReboot) {
  // The paper: a 60 s client-side timeout expires during the (429 s-scale)
  // saved-VM reboot but not during the warm one.
  {
    HostFixture fx(1);
    auto conn = make_session(fx, 60 * sim::kSecond);
    fx.rejuvenate(rejuv::RebootKind::kSaved);
    fx.sim.run_for(10 * sim::kSecond);
    EXPECT_EQ(conn->state(), net::TcpState::kTimedOut);
  }
  {
    HostFixture fx(1);
    auto conn = make_session(fx, 60 * sim::kSecond);
    fx.rejuvenate(rejuv::RebootKind::kWarm);
    fx.sim.run_for(10 * sim::kSecond);
    EXPECT_EQ(conn->state(), net::TcpState::kEstablished);
  }
}

TEST_F(TcpSessionTest, ColdRebootClosesSession) {
  HostFixture fx(1);
  auto conn = make_session(fx, /*client_timeout=*/0);
  fx.rejuvenate(rejuv::RebootKind::kCold);
  fx.sim.run_for(10 * sim::kSecond);
  // The server shut down cleanly (FIN) or, if the segment arrived after
  // the restart, reset the unknown session. Either way: dead.
  EXPECT_FALSE(conn->alive());
  EXPECT_TRUE(conn->state() == net::TcpState::kClosedByPeer ||
              conn->state() == net::TcpState::kReset);
}

}  // namespace
}  // namespace rh::test
