// Quick reload: memory preservation across VMM reboot -- the paper's
// second mechanism, and the one whose failure modes matter most.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

/// Suspends all guests, shuts down dom0 and quick-reloads; returns when
/// the new VMM and dom0 are up.
void warm_cycle_to_new_vmm(HostFixture& fx) {
  bool loaded = false;
  fx.host->vmm().xexec_load([&] { loaded = true; });
  run_until_flag(fx.sim, loaded);
  bool dom0_down = false;
  fx.host->shutdown_dom0([&] { dom0_down = true; });
  run_until_flag(fx.sim, dom0_down);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  bool up = false;
  fx.host->quick_reload([&] { up = true; });
  run_until_flag(fx.sim, up);
}

TEST(QuickReload, RequiresLoadedImage) {
  HostFixture fx(0);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  EXPECT_THROW(fx.host->quick_reload([] {}), InvariantViolation);
}

TEST(QuickReload, RequiresDom0Down) {
  HostFixture fx(0);
  bool loaded = false;
  fx.host->vmm().xexec_load([&] { loaded = true; });
  run_until_flag(fx.sim, loaded);
  EXPECT_THROW(fx.host->quick_reload([] {}), InvariantViolation);
}

TEST(QuickReload, PreservesFrozenFrameContents) {
  HostFixture fx(2);
  auto& old_vmm = fx.host->vmm();
  // Mark guest memory with recognisable tokens and remember the MFNs.
  std::vector<std::pair<hw::FrameNumber, hw::ContentToken>> expectations;
  for (auto& g : fx.guests) {
    const DomainId id = g->domain_id();
    for (mm::Pfn pfn = 500; pfn < 520; ++pfn) {
      const hw::ContentToken tok =
          0xfeed0000 + static_cast<hw::ContentToken>(id * 1000 + pfn);
      old_vmm.guest_write(id, pfn, tok);
      expectations.emplace_back(old_vmm.domain(id).p2m().mfn_of(pfn), tok);
    }
  }
  const auto generation_before = fx.host->vmm_generation();

  warm_cycle_to_new_vmm(fx);

  // A genuinely new VMM instance is running...
  EXPECT_EQ(fx.host->vmm_generation(), generation_before + 1);
  EXPECT_EQ(fx.host->vmm().boot_mode(), vmm::BootMode::kQuickReload);
  // ...no hardware reset happened...
  EXPECT_EQ(fx.host->machine().reset_count(), std::uint64_t{0});
  EXPECT_EQ(fx.host->machine().memory().power_cycles(), std::uint64_t{0});
  // ...and every frozen frame still holds its token.
  for (const auto& [mfn, tok] : expectations) {
    EXPECT_EQ(fx.host->machine().memory().read(mfn), tok);
  }
}

TEST(QuickReload, ScrubsAllNonPreservedMemory) {
  HostFixture fx(1);
  auto& old_vmm = fx.host->vmm();
  // Put a token into a frame that is NOT part of any preserved region:
  // allocate it to the VMM owner and write through machine memory.
  const auto frames = old_vmm.allocator().allocate(kVmmOwner, 1);
  fx.host->machine().memory().write(frames[0], 0xdeadbeef);

  warm_cycle_to_new_vmm(fx);

  // The new VMM's boot scrubbed it (it was free from the new allocator's
  // point of view and not in the registry).
  EXPECT_EQ(fx.host->machine().memory().read(frames[0]), hw::kScrubbed);
}

TEST(QuickReload, ResumedGuestsKeepIntegrityAndServices) {
  HostFixture fx(3);
  warm_cycle_to_new_vmm(fx);
  int resumed = 0;
  for (auto& g : fx.guests) {
    fx.host->vmm().resume_domain_on_memory(g->name(), g.get(),
                                           [&](DomainId) { ++resumed; });
  }
  while (resumed < 3 && fx.sim.pending_events() > 0) fx.sim.step();
  ASSERT_EQ(resumed, 3);
  for (auto& g : fx.guests) {
    EXPECT_TRUE(g->integrity_ok());
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    // The service was never restarted: same generation as at boot.
    EXPECT_EQ(g->find_service("sshd")->generation(), std::uint64_t{1});
  }
}

TEST(QuickReload, DishonouredRegistryCorruptsImages) {
  // Ablation: a VMM that ignores the preserved-region registry (plain
  // kexec with no RootHammer support, Sec. 4.3) destroys the images.
  Calibration calib;
  calib.honor_preserved_regions = false;
  HostFixture fx(1, calib);
  warm_cycle_to_new_vmm(fx);
  // Either the resume cannot re-claim the frames (they were reused), or
  // the guest detects corruption. Both are failures of the ablated VMM.
  bool resume_failed = false;
  try {
    bool resumed = false;
    fx.host->vmm().resume_domain_on_memory("vm0", fx.guests[0].get(),
                                           [&](DomainId) { resumed = true; });
    while (!resumed && fx.sim.pending_events() > 0) fx.sim.step();
    resume_failed = !fx.guests[0]->integrity_ok();
  } catch (const InvariantViolation&) {
    resume_failed = true;
  }
  EXPECT_TRUE(resume_failed);
}

TEST(QuickReload, FasterThanHardwareReset) {
  // Section 5.2: quick reload ~11 s vs ~59 s with a hardware reset
  // (measured from dom0-shutdown completion to VMM ready).
  auto reboot_time = [](bool quick) {
    HostFixture fx(0);
    if (quick) {
      bool loaded = false;
      fx.host->vmm().xexec_load([&] { loaded = true; });
      run_until_flag(fx.sim, loaded);
    }
    bool down = false;
    fx.host->shutdown_dom0([&] { down = true; });
    run_until_flag(fx.sim, down);
    const sim::SimTime t0 = fx.sim.now();
    bool up = false;
    if (quick) {
      fx.host->quick_reload([&] { up = true; });
    } else {
      fx.host->hardware_reboot([&] { up = true; });
    }
    run_until_flag(fx.sim, up);
    return fx.host->vmm_ready_at() - t0;  // "reboot of the VMM completed"
  };
  const double quick_s = sim::to_seconds(reboot_time(true));
  const double reset_s = sim::to_seconds(reboot_time(false));
  EXPECT_NEAR(quick_s, 11.0, 3.0);
  EXPECT_NEAR(reset_s, 59.0, 8.0);
  EXPECT_GT(reset_s - quick_s, 40.0);  // the paper's 48 s saving
}

TEST(QuickReload, HardwareResetDestroysPreservedRegions) {
  HostFixture fx(1);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  ASSERT_FALSE(fx.host->preserved().empty());
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  bool up = false;
  fx.host->hardware_reboot([&] { up = true; });
  run_until_flag(fx.sim, up);
  // RAM was power cycled: nothing survives.
  EXPECT_TRUE(fx.host->preserved().empty());
  EXPECT_EQ(fx.host->machine().memory().populated_frames(), 0);
  EXPECT_GE(fx.host->machine().memory().power_cycles(), std::uint64_t{1});
}

}  // namespace
}  // namespace rh::test
