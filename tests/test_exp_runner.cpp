// Thread pool and replication runner: scheduling correctness and, above
// all, the determinism contract -- merged grid output must be
// byte-identical no matter how many threads ran it or in which order the
// tasks finished.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "exp/thread_pool.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  exp::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), std::size_t{4});
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  exp::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), exp::ThreadPool::default_thread_count());
  EXPECT_GE(pool.worker_count(), std::size_t{1});
}

TEST(ThreadPool, SubmitFromInsideATask) {
  exp::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  exp::ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  exp::ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    exp::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(100us);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, UnevenTaskCostsAreStolen) {
  // One long task plus many short ones on few workers: everything must
  // still finish (the short tasks get stolen off the busy worker's deque).
  exp::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] {
    std::this_thread::sleep_for(50ms);
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < 200; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 201);
}

// -------------------------------------------------------------- Reducer

TEST(Reducer, MeanAndCiAcrossReplications) {
  exp::Reducer red;
  for (const double v : {10.0, 12.0, 14.0}) {
    exp::ReplicationResult r;
    r.values = {v, 100.0 * v};
    red.add(r);
  }
  EXPECT_EQ(red.replications(), std::size_t{3});
  ASSERT_EQ(red.metrics().size(), std::size_t{2});
  EXPECT_DOUBLE_EQ(red.mean(0), 12.0);
  EXPECT_DOUBLE_EQ(red.mean(1), 1200.0);
  // stddev = 2, t_{0.975, 2} = 4.303 -> 4.303 * 2 / sqrt(3).
  EXPECT_NEAR(red.ci95(0), 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(Reducer, SingleReplicationHasZeroCi) {
  exp::Reducer red;
  exp::ReplicationResult r;
  r.values = {42.0};
  red.add(r);
  EXPECT_DOUBLE_EQ(red.mean(0), 42.0);
  EXPECT_DOUBLE_EQ(red.ci95(0), 0.0);
}

TEST(Reducer, RejectsShapeMismatch) {
  exp::Reducer red;
  exp::ReplicationResult a;
  a.values = {1.0, 2.0};
  red.add(a);
  exp::ReplicationResult b;
  b.values = {1.0};
  EXPECT_THROW(red.add(b), InvariantViolation);
}

// ------------------------------------------------- run_grid determinism

/// A deterministic body with real RNG use, per-metric histograms and a
/// time series, plus a completion-order scrambling sleep: later tasks
/// sleep *less*, so under multiple threads the completion order inverts
/// the submission order.
exp::ReplicationBody scrambled_body(std::size_t total_tasks,
                                    bool scramble_order) {
  return [total_tasks, scramble_order](const exp::ReplicationContext& ctx) {
    if (scramble_order) {
      const std::size_t task =
          ctx.point_index * 4 + ctx.replication_index;  // 4 reps per point
      std::this_thread::sleep_for(
          std::chrono::microseconds(200 * (total_tasks - task)));
    }
    sim::Rng rng = ctx.rng;  // private copy; draws are schedule-independent
    exp::ReplicationResult out;
    double acc = 0;
    sim::LatencyHistogram h;
    sim::TimeSeries ts;
    for (int i = 0; i < 100; ++i) {
      const double draw = rng.uniform01();
      acc += draw;
      h.add(static_cast<sim::Duration>(draw * 1e6));
      ts.add(static_cast<sim::SimTime>(i) * sim::kSecond, draw);
    }
    out.values = {acc, static_cast<double>(ctx.seed % 1000)};
    out.histograms = {h};
    out.series = {ts};
    return out;
  };
}

/// Bitwise equality of two reduced grids, including histogram percentiles
/// and merged series samples.
void expect_bitwise_equal(const exp::GridResult& a, const exp::GridResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& ra = a.points[p];
    const auto& rb = b.points[p];
    ASSERT_EQ(ra.metrics().size(), rb.metrics().size());
    for (std::size_t m = 0; m < ra.metrics().size(); ++m) {
      const double va[2] = {ra.mean(m), ra.ci95(m)};
      const double vb[2] = {rb.mean(m), rb.ci95(m)};
      EXPECT_EQ(std::memcmp(va, vb, sizeof va), 0)
          << "point " << p << " metric " << m;
    }
    ASSERT_EQ(ra.histograms().size(), rb.histograms().size());
    for (std::size_t h = 0; h < ra.histograms().size(); ++h) {
      EXPECT_EQ(ra.histograms()[h].count(), rb.histograms()[h].count());
      EXPECT_EQ(ra.histograms()[h].percentile(50),
                rb.histograms()[h].percentile(50));
      EXPECT_EQ(ra.histograms()[h].percentile(99),
                rb.histograms()[h].percentile(99));
    }
    ASSERT_EQ(ra.series().size(), rb.series().size());
    for (std::size_t s = 0; s < ra.series().size(); ++s) {
      const auto& sa = ra.series()[s].samples();
      const auto& sb = rb.series()[s].samples();
      ASSERT_EQ(sa.size(), sb.size());
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].time, sb[i].time);
        const double da = sa[i].value, db = sb[i].value;
        EXPECT_EQ(std::memcmp(&da, &db, sizeof da), 0);
      }
    }
  }
}

exp::GridSpec small_grid(std::size_t threads) {
  exp::GridSpec spec;
  spec.points = 3;
  spec.replications = 4;
  spec.root_seed = 2026;
  spec.threads = threads;
  return spec;
}

TEST(ExpRunner, OneThreadMatchesSequentialOracle) {
  const auto body = scrambled_body(12, false);
  const auto seq = exp::run_grid_sequential(small_grid(1), body);
  const auto par = exp::run_grid(small_grid(1), body);
  EXPECT_EQ(par.threads_used, std::size_t{1});
  expect_bitwise_equal(seq, par);
}

TEST(ExpRunner, FourThreadsMatchSequentialOracle) {
  const auto body = scrambled_body(12, false);
  const auto seq = exp::run_grid_sequential(small_grid(1), body);
  const auto par = exp::run_grid(small_grid(4), body);
  EXPECT_EQ(par.threads_used, std::size_t{4});
  expect_bitwise_equal(seq, par);
}

TEST(ExpRunner, ScrambledCompletionOrderStillMatches) {
  // Sleeps make tasks finish in roughly *reverse* submission order; the
  // fixed-order reduction must still produce byte-identical output.
  const auto seq =
      exp::run_grid_sequential(small_grid(1), scrambled_body(12, false));
  const auto par = exp::run_grid(small_grid(4), scrambled_body(12, true));
  expect_bitwise_equal(seq, par);
}

TEST(ExpRunner, SeedsAreDistinctAcrossTheGrid) {
  std::mutex mu;
  std::set<std::uint64_t> seeds;
  exp::GridSpec spec;
  spec.points = 8;
  spec.replications = 8;
  spec.threads = 4;
  exp::run_grid(spec, [&](const exp::ReplicationContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(mu);
      seeds.insert(ctx.seed);
    }
    return exp::ReplicationResult{{0.0}, {}, {}};
  });
  EXPECT_EQ(seeds.size(), std::size_t{64});
}

TEST(ExpRunner, SubstreamsDependOnlyOnRootSeedAndIndices) {
  // Same root seed -> same per-task seeds, regardless of thread count.
  const auto collect = [](std::size_t threads) {
    std::mutex mu;
    std::vector<std::uint64_t> seeds(6, 0);
    exp::GridSpec spec;
    spec.points = 2;
    spec.replications = 3;
    spec.root_seed = 99;
    spec.threads = threads;
    exp::run_grid(spec, [&](const exp::ReplicationContext& ctx) {
      std::lock_guard<std::mutex> lock(mu);
      seeds[ctx.point_index * 3 + ctx.replication_index] = ctx.seed;
      return exp::ReplicationResult{{0.0}, {}, {}};
    });
    return seeds;
  };
  EXPECT_EQ(collect(1), collect(4));
}

TEST(ExpRunner, BodyExceptionIsRethrownLowestTaskFirst) {
  exp::GridSpec spec;
  spec.points = 2;
  spec.replications = 3;
  spec.threads = 4;
  const auto body = [](const exp::ReplicationContext& ctx) -> exp::ReplicationResult {
    const std::size_t task = ctx.point_index * 3 + ctx.replication_index;
    if (task == 1 || task == 4) {
      throw std::runtime_error("task " + std::to_string(task));
    }
    return {{0.0}, {}, {}};
  };
  try {
    exp::run_grid(spec, body);
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1");
  }
}

TEST(ExpRunner, WallSecondsAndThreadsAreReported) {
  const auto r = exp::run_grid(small_grid(2), scrambled_body(12, false));
  EXPECT_EQ(r.threads_used, std::size_t{2});
  EXPECT_GE(r.wall_seconds, 0.0);
  ASSERT_EQ(r.points.size(), std::size_t{3});
  EXPECT_EQ(r.point(0).replications(), std::size_t{4});
}

}  // namespace
}  // namespace rh::test
