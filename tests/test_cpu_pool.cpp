#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "simcore/simulation.hpp"

namespace rh::test {
namespace {

TEST(CpuPool, SingleTaskRunsAtFullSpeed) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 4);
  sim::SimTime done_at = 0;
  cpu.run(sim::kSecond, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, sim::kSecond);
}

TEST(CpuPool, UpToCoresNoContention) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) cpu.run(sim::kSecond, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(s.now(), sim::kSecond);  // all parallel
}

TEST(CpuPool, OverloadSharesFairly) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 2);
  // 4 equal tasks on 2 cores: each runs at rate 1/2 -> all end at 2 s.
  std::vector<sim::SimTime> ends;
  for (int i = 0; i < 4; ++i) cpu.run(sim::kSecond, [&] { ends.push_back(s.now()); });
  s.run();
  ASSERT_EQ(ends.size(), std::size_t{4});
  for (const auto e : ends) EXPECT_NEAR(sim::to_seconds(e), 2.0, 0.001);
}

TEST(CpuPool, LateArrivalSlowsEarlierTask) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 1);
  sim::SimTime first_end = 0, second_end = 0;
  cpu.run(2 * sim::kSecond, [&] { first_end = s.now(); });
  // Arrives at t=1: from then on both share the single core.
  s.after(sim::kSecond, [&] {
    cpu.run(sim::kSecond, [&] { second_end = s.now(); });
  });
  s.run();
  // First task: 1 s full speed + 1 s remaining at half speed = ends at 3 s.
  EXPECT_NEAR(sim::to_seconds(first_end), 3.0, 0.001);
  // Second: shares until t=3 (progress 1 s of work? it needs 1 s: half
  // speed from 1..3 gives exactly 1 s of work) -> ends at 3 s too.
  EXPECT_NEAR(sim::to_seconds(second_end), 3.0, 0.001);
}

TEST(CpuPool, WorkConservation) {
  // Total wall time to finish k tasks of d seconds on c cores is at least
  // k*d/c and at most k*d.
  sim::Simulation s;
  hw::CpuPool cpu(s, 4);
  int done = 0;
  for (int i = 0; i < 11; ++i) cpu.run(16 * sim::kSecond, [&] { ++done; });
  s.run();
  EXPECT_EQ(done, 11);
  EXPECT_NEAR(sim::to_seconds(s.now()), 11.0 * 16.0 / 4.0, 0.01);
}

TEST(CpuPool, ZeroDurationCompletesImmediately) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 1);
  bool done = false;
  cpu.run(0, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), 0);
}

TEST(CpuPool, TaskChainsFromCompletionCallback) {
  sim::Simulation s;
  hw::CpuPool cpu(s, 1);
  sim::SimTime end = 0;
  cpu.run(sim::kSecond, [&] {
    cpu.run(sim::kSecond, [&] { end = s.now(); });
  });
  s.run();
  EXPECT_NEAR(sim::to_seconds(end), 2.0, 0.001);
  EXPECT_EQ(cpu.active_tasks(), 0);
}

}  // namespace
}  // namespace rh::test
