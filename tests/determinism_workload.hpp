// Deterministic mixed scheduling workload shared by the determinism
// regression test and the scheduler benchmarks.
//
// The workload interleaves pushes across three time horizons (near, mid,
// far), same-time bursts (FIFO collisions), deterministic cancellations of
// pending events, and partial drains, then fully drains the queue. The
// returned value is an order-sensitive FNV-1a hash over the exact sequence
// of (fire time, payload) pairs, so ANY reordering of event execution --
// including a same-time FIFO violation -- changes the hash. The golden
// value pinned in test_event_queue.cpp was produced by the original
// binary-heap EventQueue; the calendar queue must reproduce it bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/random.hpp"
#include "simcore/types.hpp"

namespace rh::test {

/// Runs the workload against any queue exposing the EventQueue interface
/// (push/cancel/pop/size/empty) and returns the event-order hash.
template <typename Queue>
std::uint64_t determinism_workload_hash(Queue& q) {
  sim::Rng rng(0xD15EA5EULL);
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV prime
    }
  };

  struct Tracked {
    std::uint64_t id = 0;
    bool fired = false;
    bool cancelled = false;
  };
  std::vector<Tracked> events;         // indexed by payload
  std::vector<std::size_t> fire_log;   // payloads in fire order

  sim::SimTime base = 0;
  const auto push_one = [&](sim::SimTime t) {
    const std::size_t payload = events.size();
    const auto id = q.push(t, [payload, &fire_log] { fire_log.push_back(payload); });
    events.push_back({static_cast<std::uint64_t>(id), false, false});
  };
  const auto pop_one = [&]() {
    auto ev = q.pop();
    mix(static_cast<std::uint64_t>(ev.time));
    ev.fn();
    events[fire_log.back()].fired = true;
    mix(static_cast<std::uint64_t>(fire_log.back()));
  };

  constexpr int kRounds = 6;
  constexpr int kPushesPerRound = 400;
  for (int round = 0; round < kRounds; ++round) {
    const sim::SimTime hot[4] = {base + 17, base + 1000, base + 1001, base + 4242};
    for (int i = 0; i < kPushesPerRound; ++i) {
      const std::uint64_t r = rng.next();
      sim::SimTime t = 0;
      switch (r % 8) {
        case 0:  // same-time burst slots
          t = hot[(r >> 8) % 4];
          break;
        case 1:  // near horizon
          t = base + static_cast<sim::SimTime>((r >> 8) % 50);
          break;
        case 2:  // far horizon (TCP keepalives, weekly rejuvenation timers)
          t = base + 1'000'000 + static_cast<sim::SimTime>((r >> 8) % 1'000'000);
          break;
        default:  // mid horizon
          t = base + static_cast<sim::SimTime>((r >> 8) % 5000);
          break;
      }
      push_one(t);
    }

    // Cancel a deterministic subset of still-pending events.
    std::size_t scanned = 0;
    for (auto& e : events) {
      if (e.fired || e.cancelled) continue;
      if (++scanned % 7 == 3) {
        e.cancelled = true;
        mix(static_cast<std::uint64_t>(q.cancel(e.id)));
      }
    }

    // Drain ~60% of what is live, then keep scheduling next round "in the
    // past" relative to the far events already popped.
    const std::size_t pops = q.size() * 3 / 5;
    for (std::size_t i = 0; i < pops && !q.empty(); ++i) pop_one();
    base += 2500;
  }

  while (!q.empty()) pop_one();
  return h;
}

}  // namespace rh::test
