// Closed-loop HTTP fleet + throughput analysis.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/http_client.hpp"
#include "workload/throughput_recorder.hpp"

namespace rh::test {
namespace {

struct WebRig {
  HostFixture fx{0};
  guest::GuestOs* g = nullptr;
  guest::ApacheService* apache = nullptr;
  std::vector<std::int64_t> files;

  explicit WebRig(int file_count = 50, sim::Bytes file_size = 512 * sim::kKiB) {
    auto os = std::make_unique<guest::GuestOs>(*fx.host, "web", sim::kGiB);
    os->add_service(std::make_unique<guest::SshService>());
    apache = &static_cast<guest::ApacheService&>(
        os->add_service(std::make_unique<guest::ApacheService>()));
    for (int f = 0; f < file_count; ++f) {
      files.push_back(os->vfs().create_file("f" + std::to_string(f), file_size));
    }
    g = os.get();
    fx.guests.push_back(std::move(os));
    bool up = false;
    g->create_and_boot([&up] { up = true; });
    run_until_flag(fx.sim, up);
  }
};

TEST(HttpClient, ClosedLoopThroughputIsNicBound) {
  WebRig rig;
  workload::HttpClientFleet fleet(*rig.g, *rig.apache, rig.files, {});
  fleet.start();
  rig.fx.sim.run_for(30 * sim::kSecond);
  fleet.stop();
  // Once cached, 512 KiB responses over a 117 MB/s NIC -> ~220 req/s.
  const double rate = fleet.completions().rate_between(
      rig.fx.sim.now() - 10 * sim::kSecond, rig.fx.sim.now());
  EXPECT_NEAR(rate, 220.0, 15.0);
  EXPECT_GT(fleet.requests_ok(), std::uint64_t{1000});
  EXPECT_EQ(fleet.requests_failed(), std::uint64_t{0});
}

TEST(HttpClient, OnceModeServesEachFileExactlyOnce) {
  WebRig rig(100);
  workload::HttpClientFleet fleet(*rig.g, *rig.apache, rig.files,
                                  {10, sim::kSecond, /*cycle=*/false});
  fleet.start();
  rig.fx.sim.run_for(sim::kMinute);
  EXPECT_TRUE(fleet.finished());
  EXPECT_EQ(fleet.requests_ok(), std::uint64_t{100});
  EXPECT_EQ(rig.apache->requests_served(), std::uint64_t{100});
}

TEST(HttpClient, RetriesThroughAnOutage) {
  WebRig rig;
  workload::HttpClientFleet fleet(*rig.g, *rig.apache, rig.files, {});
  fleet.start();
  rig.fx.sim.run_for(10 * sim::kSecond);
  // Stop apache for 5 s: requests fail and are retried, then flow resumes.
  bool stopped = false;
  rig.apache->stop(*rig.g, [&] { stopped = true; });
  run_until_flag(rig.fx.sim, stopped);
  rig.fx.sim.run_for(5 * sim::kSecond);
  const auto failed_during = fleet.requests_failed();
  EXPECT_GT(failed_during, std::uint64_t{10});
  bool started = false;
  rig.apache->start(*rig.g, [&] { started = true; });
  run_until_flag(rig.fx.sim, started);
  const auto ok_before = fleet.requests_ok();
  rig.fx.sim.run_for(5 * sim::kSecond);
  fleet.stop();
  EXPECT_GT(fleet.requests_ok(), ok_before + 100);
}

TEST(HttpClient, AnalyzerQuantifiesDip) {
  WebRig rig;
  workload::HttpClientFleet fleet(*rig.g, *rig.apache, rig.files, {});
  fleet.start();
  rig.fx.sim.run_for(20 * sim::kSecond);
  const sim::SimTime event = rig.fx.sim.now();
  bool stopped = false;
  rig.apache->stop(*rig.g, [&] { stopped = true; });
  run_until_flag(rig.fx.sim, stopped);
  rig.fx.sim.run_for(10 * sim::kSecond);
  bool started = false;
  rig.apache->start(*rig.g, [&] { started = true; });
  run_until_flag(rig.fx.sim, started);
  const sim::SimTime restored = rig.fx.sim.now();
  rig.fx.sim.run_for(20 * sim::kSecond);
  fleet.stop();

  const auto rep = workload::ThroughputAnalyzer::analyze(
      fleet.completions(), event, restored, rig.fx.sim.now());
  EXPECT_NEAR(rep.baseline_rate, 220.0, 20.0);
  // Full recovery (caches intact): the first active bin is only ramp-up
  // noise (retries re-arrive over ~1 s), not a persistent dip.
  EXPECT_LT(rep.degradation, 0.4);
  EXPECT_LE(sim::to_seconds(rep.degraded_window), 3.0);
}

TEST(HttpClient, ValidatesConfig) {
  WebRig rig;
  EXPECT_THROW(workload::HttpClientFleet(*rig.g, *rig.apache, {}, {}),
               InvariantViolation);
  workload::HttpClientFleet::Config bad;
  bad.connections = 0;
  EXPECT_THROW(workload::HttpClientFleet(*rig.g, *rig.apache, rig.files, bad),
               InvariantViolation);
}

}  // namespace
}  // namespace rh::test
