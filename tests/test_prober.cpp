#include <gtest/gtest.h>

#include "simcore/simulation.hpp"
#include "workload/prober.hpp"

namespace rh::test {
namespace {

TEST(Prober, RecordsTransitionsOnly) {
  sim::Simulation s;
  bool up = true;
  workload::Prober p(s, {}, [&] { return up; });
  p.start();
  s.run_until(sim::kSecond);
  s.after(0, [&] { up = false; });
  s.run_until(2 * sim::kSecond);
  s.after(0, [&] { up = true; });
  s.run_until(3 * sim::kSecond);
  p.stop();
  // first probe (up), down transition, up transition.
  ASSERT_EQ(p.transitions().size(), std::size_t{3});
  EXPECT_TRUE(p.transitions()[0].up);
  EXPECT_FALSE(p.transitions()[1].up);
  EXPECT_TRUE(p.transitions()[2].up);
}

TEST(Prober, OutageMeasurement) {
  sim::Simulation s;
  bool up = true;
  workload::Prober p(s, {}, [&] { return up; });
  p.start();
  s.at(5 * sim::kSecond, [&] { up = false; });
  s.at(25 * sim::kSecond, [&] { up = true; });
  s.run_until(sim::kMinute);
  p.stop();
  const auto outage = p.outage_after(0);
  ASSERT_TRUE(outage.has_value());
  // 20 s outage, measured to probe resolution (100 ms).
  EXPECT_NEAR(sim::to_seconds(*outage), 20.0, 0.3);
  EXPECT_NEAR(sim::to_seconds(p.down_at_after(0).value()), 5.0, 0.2);
  EXPECT_FALSE(p.outage_after(30 * sim::kSecond).has_value());
}

TEST(Prober, UnfinishedOutageNotReported) {
  sim::Simulation s;
  bool up = true;
  workload::Prober p(s, {}, [&] { return up; });
  p.start();
  s.at(5 * sim::kSecond, [&] { up = false; });
  s.run_until(sim::kMinute);
  EXPECT_TRUE(p.down_at_after(0).has_value());
  EXPECT_FALSE(p.outage_after(0).has_value());  // never came back
  EXPECT_FALSE(p.currently_up());
}

TEST(Prober, TotalDowntimeAcrossMultipleOutages) {
  sim::Simulation s;
  bool up = true;
  workload::Prober p(s, {}, [&] { return up; });
  p.start();
  s.at(10 * sim::kSecond, [&] { up = false; });
  s.at(15 * sim::kSecond, [&] { up = true; });
  s.at(30 * sim::kSecond, [&] { up = false; });
  s.at(40 * sim::kSecond, [&] { up = true; });
  s.run_until(sim::kMinute);
  p.stop();
  EXPECT_NEAR(sim::to_seconds(p.total_downtime(0, sim::kMinute)), 15.0, 0.5);
  // Clipped windows count only the overlap.
  EXPECT_NEAR(sim::to_seconds(p.total_downtime(12 * sim::kSecond,
                                               14 * sim::kSecond)),
              2.0, 0.3);
}

TEST(Prober, StopCancelsFutureProbes) {
  sim::Simulation s;
  int calls = 0;
  workload::Prober p(s, {}, [&] {
    ++calls;
    return true;
  });
  p.start();
  s.run_until(sim::kSecond);
  p.stop();
  const int at_stop = calls;
  s.run_until(10 * sim::kSecond);
  EXPECT_EQ(calls, at_stop);
  EXPECT_EQ(p.probes_sent(), static_cast<std::uint64_t>(calls));
}

}  // namespace
}  // namespace rh::test
