#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/time_series.hpp"

namespace rh::test {
namespace {

using sim::kSecond;

TEST(TimeSeries, MeanBetween) {
  sim::TimeSeries ts;
  ts.add(1 * kSecond, 10);
  ts.add(2 * kSecond, 20);
  ts.add(3 * kSecond, 30);
  EXPECT_DOUBLE_EQ(ts.mean_between(0, 10 * kSecond).value(), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(2 * kSecond, 3 * kSecond).value(), 20.0);
  EXPECT_FALSE(ts.mean_between(5 * kSecond, 6 * kSecond).has_value());
}

TEST(TimeSeries, RequiresTimeOrder) {
  sim::TimeSeries ts;
  ts.add(10, 1);
  EXPECT_THROW(ts.add(5, 2), InvariantViolation);
}

TEST(TimeSeries, BinnedMeanFillsEmptyBins) {
  sim::TimeSeries ts;
  ts.add(0, 10);
  ts.add(2 * kSecond + 1, 30);
  const auto bins = ts.binned_mean(0, 4 * kSecond, kSecond, -1.0);
  ASSERT_EQ(bins.size(), std::size_t{4});
  EXPECT_DOUBLE_EQ(bins[0].value, 10.0);
  EXPECT_DOUBLE_EQ(bins[1].value, -1.0);
  EXPECT_DOUBLE_EQ(bins[2].value, 30.0);
  EXPECT_DOUBLE_EQ(bins[3].value, -1.0);
}

TEST(RateRecorder, RateBetween) {
  sim::RateRecorder r;
  for (int i = 0; i < 100; ++i) r.record(i * (kSecond / 10));  // 10/s for 10 s
  EXPECT_NEAR(r.rate_between(0, 10 * kSecond), 10.0, 0.1);
  EXPECT_DOUBLE_EQ(r.total(), 100.0);
}

TEST(RateRecorder, RateSeriesBins) {
  sim::RateRecorder r;
  r.record(100'000, 5.0);             // 5 events at t=0.1 s
  r.record(1 * kSecond + 1, 2.0);     // 2 events at t=1.000001 s
  const auto series = r.rate_series(0, 2 * kSecond, kSecond);
  ASSERT_EQ(series.size(), std::size_t{2});
  EXPECT_DOUBLE_EQ(series[0].value, 5.0);
  EXPECT_DOUBLE_EQ(series[1].value, 2.0);
}

TEST(RateRecorder, FirstAndLastEventQueries) {
  sim::RateRecorder r;
  r.record(10);
  r.record(20);
  r.record(30);
  EXPECT_EQ(r.first_event_at_or_after(15).value(), 20);
  EXPECT_EQ(r.first_event_at_or_after(20).value(), 20);
  EXPECT_FALSE(r.first_event_at_or_after(31).has_value());
  EXPECT_EQ(r.last_event_before(30).value(), 20);
  EXPECT_FALSE(r.last_event_before(10).has_value());
}

TEST(RateRecorder, EmptyWindowThrows) {
  sim::RateRecorder r;
  EXPECT_THROW((void)r.rate_between(10, 10), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
