#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/time_series.hpp"

namespace rh::test {
namespace {

using sim::kSecond;

TEST(TimeSeries, MeanBetween) {
  sim::TimeSeries ts;
  ts.add(1 * kSecond, 10);
  ts.add(2 * kSecond, 20);
  ts.add(3 * kSecond, 30);
  EXPECT_DOUBLE_EQ(ts.mean_between(0, 10 * kSecond).value(), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(2 * kSecond, 3 * kSecond).value(), 20.0);
  EXPECT_FALSE(ts.mean_between(5 * kSecond, 6 * kSecond).has_value());
}

TEST(TimeSeries, RequiresTimeOrder) {
  sim::TimeSeries ts;
  ts.add(10, 1);
  EXPECT_THROW(ts.add(5, 2), InvariantViolation);
}

TEST(TimeSeries, BinnedMeanFillsEmptyBins) {
  sim::TimeSeries ts;
  ts.add(0, 10);
  ts.add(2 * kSecond + 1, 30);
  const auto bins = ts.binned_mean(0, 4 * kSecond, kSecond, -1.0);
  ASSERT_EQ(bins.size(), std::size_t{4});
  EXPECT_DOUBLE_EQ(bins[0].value, 10.0);
  EXPECT_DOUBLE_EQ(bins[1].value, -1.0);
  EXPECT_DOUBLE_EQ(bins[2].value, 30.0);
  EXPECT_DOUBLE_EQ(bins[3].value, -1.0);
}

TEST(RateRecorder, RateBetween) {
  sim::RateRecorder r;
  for (int i = 0; i < 100; ++i) r.record(i * (kSecond / 10));  // 10/s for 10 s
  EXPECT_NEAR(r.rate_between(0, 10 * kSecond), 10.0, 0.1);
  EXPECT_DOUBLE_EQ(r.total(), 100.0);
}

TEST(RateRecorder, RateSeriesBins) {
  sim::RateRecorder r;
  r.record(100'000, 5.0);             // 5 events at t=0.1 s
  r.record(1 * kSecond + 1, 2.0);     // 2 events at t=1.000001 s
  const auto series = r.rate_series(0, 2 * kSecond, kSecond);
  ASSERT_EQ(series.size(), std::size_t{2});
  EXPECT_DOUBLE_EQ(series[0].value, 5.0);
  EXPECT_DOUBLE_EQ(series[1].value, 2.0);
}

TEST(RateRecorder, FirstAndLastEventQueries) {
  sim::RateRecorder r;
  r.record(10);
  r.record(20);
  r.record(30);
  EXPECT_EQ(r.first_event_at_or_after(15).value(), 20);
  EXPECT_EQ(r.first_event_at_or_after(20).value(), 20);
  EXPECT_FALSE(r.first_event_at_or_after(31).has_value());
  EXPECT_EQ(r.last_event_before(30).value(), 20);
  EXPECT_FALSE(r.last_event_before(10).has_value());
}

TEST(RateRecorder, EmptyWindowThrows) {
  sim::RateRecorder r;
  EXPECT_THROW((void)r.rate_between(10, 10), InvariantViolation);
}

TEST(TimeSeriesMerge, InterleavesByTime) {
  sim::TimeSeries a, b;
  a.add(1 * kSecond, 1);
  a.add(3 * kSecond, 3);
  b.add(2 * kSecond, 2);
  b.add(4 * kSecond, 4);
  a.merge(b);
  ASSERT_EQ(a.size(), std::size_t{4});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.samples()[i].time, static_cast<sim::SimTime>(i + 1) * kSecond);
    EXPECT_DOUBLE_EQ(a.samples()[i].value, static_cast<double>(i + 1));
  }
}

TEST(TimeSeriesMerge, EmptySidesAreIdentity) {
  sim::TimeSeries a, empty;
  a.add(kSecond, 7);
  a.merge(empty);
  ASSERT_EQ(a.size(), std::size_t{1});
  sim::TimeSeries b;
  b.merge(a);
  ASSERT_EQ(b.size(), std::size_t{1});
  EXPECT_DOUBLE_EQ(b.samples()[0].value, 7.0);
}

TEST(TimeSeriesMerge, TiesKeepThisSeriesFirst) {
  // The stability contract: equal timestamps keep the left (lower
  // replication index) samples ahead of the right's, making a fixed-order
  // reduction produce one well-defined sample order.
  sim::TimeSeries a, b;
  a.add(kSecond, 1);
  a.add(kSecond, 2);
  b.add(kSecond, 3);
  b.add(kSecond, 4);
  a.merge(b);
  ASSERT_EQ(a.size(), std::size_t{4});
  EXPECT_DOUBLE_EQ(a.samples()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(a.samples()[1].value, 2.0);
  EXPECT_DOUBLE_EQ(a.samples()[2].value, 3.0);
  EXPECT_DOUBLE_EQ(a.samples()[3].value, 4.0);
}

TEST(TimeSeriesMerge, MergedSeriesStillQueries) {
  sim::TimeSeries a, b;
  a.add(1 * kSecond, 10);
  b.add(2 * kSecond, 30);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean_between(0, 10 * kSecond).value(), 20.0);
  // A merged series must still satisfy add()'s time-order invariant.
  a.add(3 * kSecond, 50);
  EXPECT_EQ(a.size(), std::size_t{3});
}

TEST(RateRecorderMerge, TotalsAddAndRatesCombine) {
  sim::RateRecorder a, b;
  a.record(1 * kSecond, 2);
  a.record(5 * kSecond, 2);
  b.record(2 * kSecond, 6);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 10.0);
  // 8 events in [0, 4 s).
  EXPECT_DOUBLE_EQ(a.rate_between(0, 4 * kSecond), 2.0);
  sim::RateRecorder empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.total(), 10.0);
}

}  // namespace
}  // namespace rh::test
