// In-place VMM micro-recovery (DESIGN.md §13): the rung above warm.
// Covers the success path (frozen VMs resume over a rebuilt VMM), the
// failure ladder (attempts exhaust -> hardware reboot + cold boots),
// per-VM snapshot corruption, hang detection latency, and the wave-level
// outcome reporting the cluster layer builds on top.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "rejuv/supervisor.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

using fault::FaultConfig;
using fault::FaultKind;
using rejuv::RecoveryAction;
using rejuv::Supervisor;
using rejuv::SupervisorConfig;
using rejuv::SupervisorReport;

SupervisorConfig micro_config(double success_rate = 1.0, int max_attempts = 2) {
  SupervisorConfig cfg;
  cfg.micro.enabled = true;
  cfg.micro.success_rate = success_rate;
  cfg.micro.max_attempts = max_attempts;
  return cfg;
}

/// Drives one respond_to_failure() to completion; returns the report.
SupervisorReport respond(HostFixture& fx, Supervisor& sup, FaultKind kind) {
  bool done = false;
  sup.respond_to_failure(kind, [&done](const SupervisorReport&) {
    done = true;
  });
  run_until_flag(fx.sim, done, 2 * sim::kHour);
  return sup.report();
}

TEST(MicroRecovery, InPlaceRecoveryResumesEveryFrozenVm) {
  HostFixture fx(3);
  Supervisor sup(*fx.host, fx.guest_ptrs(), micro_config());
  const auto report = respond(fx, sup, FaultKind::kVmmCrash);

  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.vmm_crashed);
  EXPECT_TRUE(report.micro_recovered);
  EXPECT_EQ(report.micro_attempts, std::size_t{1});
  EXPECT_EQ(report.completed, rejuv::RebootKind::kWarm);
  EXPECT_EQ(report.resumed_vms, std::size_t{3});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{0});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kMicroRecoveryAttempt),
            std::size_t{1});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kMicroRecoverySucceeded),
            std::size_t{1});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kHardwareRebootAfterCrash),
            std::size_t{0});
  EXPECT_TRUE(fx.host->up());
  EXPECT_FALSE(fx.host->recovery_in_progress());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());  // resumed state, not a fresh boot
  }
}

TEST(MicroRecovery, ExhaustedAttemptsFallBackToHardwareReboot) {
  HostFixture fx(2);
  Supervisor sup(*fx.host, fx.guest_ptrs(),
                 micro_config(/*success_rate=*/0.0, /*max_attempts=*/2));
  const auto report = respond(fx, sup, FaultKind::kVmmCrash);

  EXPECT_TRUE(report.success);  // the bottom rung still brings VMs back
  EXPECT_FALSE(report.micro_recovered);
  EXPECT_EQ(report.micro_attempts, std::size_t{2});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kMicroRecoveryFailed),
            std::size_t{2});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kHardwareRebootAfterCrash),
            std::size_t{1});
  EXPECT_EQ(report.completed, rejuv::RebootKind::kCold);
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});
  EXPECT_TRUE(fx.host->up());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(MicroRecovery, CorruptSnapshotDegradesThatVmOnlyToColdBoot) {
  HostFixture fx(2);
  Supervisor sup(*fx.host, fx.guest_ptrs(), micro_config());
  bool done = false;
  sup.respond_to_failure(FaultKind::kVmmCrash,
                         [&done](const SupervisorReport&) { done = true; });
  // The crash snapshots were cut synchronously at the failure point; rot
  // one of them in RAM before the rebuild's checksum validation runs.
  fx.host->preserved().corrupt_payload("domain/vm0");
  run_until_flag(fx.sim, done, 2 * sim::kHour);

  const auto& report = sup.report();
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.micro_recovered);  // the sibling still resumed in place
  EXPECT_EQ(report.resumed_vms, std::size_t{1});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{1});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kColdBootSingleVm),
            std::size_t{1});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
  EXPECT_TRUE(fx.guests[1]->integrity_ok());
}

TEST(MicroRecovery, AllSnapshotsCorruptMeansMetadataCorruptFallback) {
  HostFixture fx(2);
  Supervisor sup(*fx.host, fx.guest_ptrs(), micro_config());
  bool done = false;
  sup.respond_to_failure(FaultKind::kVmmCrash,
                         [&done](const SupervisorReport&) { done = true; });
  fx.host->preserved().corrupt_payload("domain/vm0");
  fx.host->preserved().corrupt_payload("domain/vm1");
  run_until_flag(fx.sim, done, 2 * sim::kHour);

  const auto& report = sup.report();
  EXPECT_TRUE(report.success);
  EXPECT_FALSE(report.micro_recovered);
  EXPECT_EQ(
      report.recovery_count(RecoveryAction::kMicroRecoveryMetadataCorrupt),
      std::size_t{1});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kHardwareRebootAfterCrash),
            std::size_t{1});
  EXPECT_EQ(report.completed, rejuv::RebootKind::kCold);
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});
  EXPECT_TRUE(fx.host->up());
}

TEST(MicroRecovery, HangIsActedOnOnlyAfterDetectionLatency) {
  HostFixture fx(2);
  SupervisorConfig cfg = micro_config();
  cfg.hang_detection = 5 * sim::kSecond;
  Supervisor sup(*fx.host, fx.guest_ptrs(), cfg);
  bool done = false;
  sup.respond_to_failure(FaultKind::kVmmHang,
                         [&done](const SupervisorReport&) { done = true; });
  // A wedge does not announce itself: the instance is only torn down once
  // the external watchdog fires.
  EXPECT_TRUE(fx.host->up());
  run_until_flag(fx.sim, done, 2 * sim::kHour);
  const auto& report = sup.report();
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.micro_recovered);
  EXPECT_GE(report.total_duration(), cfg.hang_detection);
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(MicroRecovery, MicroDisabledResponseTakesTheLegacyCrashPath) {
  HostFixture fx(2);
  Supervisor sup(*fx.host, fx.guest_ptrs(), SupervisorConfig{});
  const auto report = respond(fx, sup, FaultKind::kVmmCrash);

  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.micro_attempts, std::size_t{0});
  EXPECT_FALSE(report.micro_recovered);
  EXPECT_EQ(report.recovery_count(RecoveryAction::kHardwareRebootAfterCrash),
            std::size_t{1});
  EXPECT_EQ(report.completed, rejuv::RebootKind::kCold);
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});
}

TEST(MicroRecovery, InPlaceRecoveryIsFarFasterThanHardwareReboot) {
  HostFixture micro_fx(2);
  Supervisor micro_sup(*micro_fx.host, micro_fx.guest_ptrs(), micro_config());
  const auto micro_report = respond(micro_fx, micro_sup, FaultKind::kVmmCrash);

  HostFixture cold_fx(2);
  Supervisor cold_sup(*cold_fx.host, cold_fx.guest_ptrs(), SupervisorConfig{});
  const auto cold_report = respond(cold_fx, cold_sup, FaultKind::kVmmCrash);

  ASSERT_TRUE(micro_report.micro_recovered);
  ASSERT_FALSE(cold_report.micro_recovered);
  // ReHype's claim, reproduced: in-place recovery is orders of magnitude
  // faster than a power cycle plus cold boots.
  EXPECT_LT(micro_report.total_duration() * 10,
            cold_report.total_duration());
}

TEST(MicroRecovery, RespondToFailureValidatesKindAndIsOneShot) {
  HostFixture fx(1);
  Supervisor sup(*fx.host, fx.guest_ptrs(), micro_config());
  EXPECT_THROW(sup.respond_to_failure(FaultKind::kDiskReadError,
                                      [](const SupervisorReport&) {}),
               InvariantViolation);
  const auto report = respond(fx, sup, FaultKind::kVmmCrash);
  EXPECT_TRUE(report.success);
  EXPECT_THROW(sup.respond_to_failure(FaultKind::kVmmCrash,
                                      [](const SupervisorReport&) {}),
               InvariantViolation);
  EXPECT_THROW(sup.run([](const SupervisorReport&) {}), InvariantViolation);
}

TEST(MicroRecovery, SteadyCrashDuringServiceIsRecoveredInPlace) {
  // End-to-end: a steady-state arrival process detects the crash, a fresh
  // Supervisor owns the response, and the VMs come back with state intact.
  HostFixture fx(2);
  FaultConfig faults;
  faults.vmm_crash_rate = 1.0;
  fx.host->configure_faults(faults);
  fault::SteadyFaultProcess steady(fx.sim, fx.host->faults(), {});

  std::vector<std::unique_ptr<Supervisor>> responders;
  bool recovered = false;
  steady.start([&](FaultKind kind) {
    responders.push_back(std::make_unique<Supervisor>(
        *fx.host, fx.guest_ptrs(), micro_config()));
    responders.back()->respond_to_failure(
        kind, [&recovered](const SupervisorReport& r) {
          recovered = r.micro_recovered;
        });
  });
  fx.sim.run_until(fx.sim.now() + 10 * sim::kMinute);
  steady.stop();
  EXPECT_TRUE(recovered);
  ASSERT_EQ(responders.size(), std::size_t{1});  // paused until resumed
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(MicroRecovery, WaveReportReflectsMidWaveLadderOutcomes) {
  // Supervised waves: a VMM crash at the start of every host's turn. With
  // micro-recovery enabled the wave completes on the preferred rung; with
  // it disabled every host degrades to cold and the report says so.
  auto run_wave = [](bool micro_enabled) {
    sim::Simulation sim;
    cluster::Cluster::Config ccfg;
    ccfg.hosts = 2;
    ccfg.vms_per_host = 2;
    ccfg.faults.vmm_crash_rate = 1.0;
    cluster::Cluster cl(sim, ccfg);
    bool ready = false;
    cl.start([&ready] { ready = true; });
    run_until_flag(sim, ready, 2 * sim::kHour);
    cluster::Cluster::WaveConfig wcfg;
    wcfg.wave_size = 2;
    if (micro_enabled) {
      wcfg.supervisor.micro.enabled = true;
      wcfg.supervisor.micro.success_rate = 1.0;
    }
    bool done = false;
    cluster::Cluster::WaveReport report;
    cl.rolling_rejuvenation_waves(
        wcfg, [&](const cluster::Cluster::WaveReport& r) {
          report = r;
          done = true;
        });
    run_until_flag(sim, done, 12 * sim::kHour);
    return report;
  };

  const auto with_micro = run_wave(true);
  ASSERT_EQ(with_micro.waves.size(), std::size_t{1});
  ASSERT_EQ(with_micro.waves[0].outcomes.size(), std::size_t{2});
  for (const auto& outcome : with_micro.waves[0].outcomes) {
    EXPECT_TRUE(outcome.vmm_crashed);
    EXPECT_TRUE(outcome.micro_recovered);
    EXPECT_EQ(outcome.completed, rejuv::RebootKind::kWarm);
  }
  EXPECT_TRUE(with_micro.fully_recovered());
  EXPECT_TRUE(with_micro.degraded_hosts.empty());

  const auto without_micro = run_wave(false);
  ASSERT_EQ(without_micro.waves.size(), std::size_t{1});
  EXPECT_EQ(without_micro.degraded_hosts.size(), std::size_t{2});
  for (const auto& outcome : without_micro.waves[0].outcomes) {
    EXPECT_TRUE(outcome.vmm_crashed);
    EXPECT_EQ(outcome.completed, rejuv::RebootKind::kCold);
  }
  EXPECT_TRUE(without_micro.fully_recovered());
}

}  // namespace
}  // namespace rh::test
