// On-memory suspend/resume: state preservation and timing behaviour.
#include <gtest/gtest.h>

#include "mm/balloon.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(SuspendResume, SuspendFreezesDomainAndRecordsRegion) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  const DomainId id = fx.guests[0]->domain_id();
  ASSERT_NE(id, kNoDomain);

  bool suspended = false;
  vmm.suspend_domain_on_memory(id, [&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  EXPECT_EQ(vmm.domain(id).state(), vmm::DomainState::kSuspendedInMemory);
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kSuspended);
  const auto* region = fx.host->preserved().find("domain/vm0");
  ASSERT_NE(region, nullptr);
  // All of the domain's 1 GiB (262144 frames) is frozen in place.
  EXPECT_EQ(region->frozen_frames.size(), std::size_t{262144});
  // The payload carries the P2M table (8 B/page = 2 MiB/GiB) plus the
  // small execution state.
  EXPECT_GT(region->payload.size(), std::size_t{2 * 1024 * 1024});
  EXPECT_LT(region->payload.size(), std::size_t{3 * 1024 * 1024});
}

TEST(SuspendResume, SuspendTouchesNoGuestMemory) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  const DomainId id = fx.guests[0]->domain_id();
  // Write recognisable tokens into a few guest pages.
  for (mm::Pfn pfn = 100; pfn < 110; ++pfn) {
    vmm.guest_write(id, pfn, 0xabc000 + static_cast<hw::ContentToken>(pfn));
  }
  bool suspended = false;
  vmm.suspend_domain_on_memory(id, [&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  // The tokens are still exactly where they were: no copy, no scrub.
  const auto& p2m = vmm.domain(id).p2m();
  for (mm::Pfn pfn = 100; pfn < 110; ++pfn) {
    EXPECT_EQ(fx.host->machine().memory().read(p2m.mfn_of(pfn)),
              0xabc000 + static_cast<hw::ContentToken>(pfn));
  }
}

TEST(SuspendResume, ResumeRestoresExecStateExactly) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  const DomainId id = fx.guests[0]->domain_id();
  const vmm::ExecState before = vmm.domain(id).exec();
  const auto evch_before = vmm.domain(id).event_channels().state_token();

  bool suspended = false;
  vmm.suspend_domain_on_memory(id, [&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  bool resumed = false;
  DomainId new_id = kNoDomain;
  vmm.resume_domain_on_memory("vm0", fx.guests[0].get(), [&](DomainId nid) {
    new_id = nid;
    resumed = true;
  });
  run_until_flag(fx.sim, resumed);

  ASSERT_NE(new_id, kNoDomain);
  EXPECT_NE(new_id, id);  // domain ids change across resume, as in Xen
  EXPECT_EQ(vmm.domain(new_id).exec().cpu_context, before.cpu_context);
  EXPECT_EQ(vmm.domain(new_id).exec().shared_info, before.shared_info);
  EXPECT_EQ(vmm.domain(new_id).exec().device_config, before.device_config);
  EXPECT_EQ(vmm.domain(new_id).exec().event_channels, evch_before);
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kRunning);
  // The preserved region is consumed by the resume.
  EXPECT_EQ(fx.host->preserved().find("domain/vm0"), nullptr);
}

TEST(SuspendResume, SuspendTimeBarelyDependsOnMemorySize) {
  // Fig. 4's key property: on-memory suspend is (nearly) memory-size
  // independent, because no image is copied.
  auto suspend_time = [](sim::Bytes memory) {
    HostFixture fx(0);
    auto& g = fx.add_vm("big", memory);
    const sim::SimTime t0 = fx.sim.now();
    bool done = false;
    fx.host->vmm().suspend_domain_on_memory(g.domain_id(), [&] { done = true; });
    run_until_flag(fx.sim, done);
    return fx.sim.now() - t0;
  };
  const auto t1 = suspend_time(1 * sim::kGiB);
  const auto t11 = suspend_time(11 * sim::kGiB);
  // ~40 ms vs ~80 ms: both well under a second, ratio far below the 11x
  // of a copy-based approach.
  EXPECT_LT(t11, sim::kSecond / 4);
  EXPECT_LT(static_cast<double>(t11) / static_cast<double>(t1), 4.0);
}

TEST(SuspendResume, SuspendAllRunsInParallel) {
  HostFixture fx(4);
  const sim::SimTime t0 = fx.sim.now();
  bool done = false;
  fx.host->vmm().suspend_all_on_memory([&] { done = true; });
  run_until_flag(fx.sim, done);
  // Four parallel suspends cost barely more than one (~40 ms each).
  EXPECT_LT(fx.sim.now() - t0, sim::kSecond / 2);
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kSuspended);
  }
}

TEST(SuspendResume, ResumeIsSerialisedThroughXend) {
  HostFixture fx(4);
  auto& vmm = fx.host->vmm();
  bool suspended = false;
  vmm.suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  const sim::SimTime t0 = fx.sim.now();
  int resumed = 0;
  for (auto& g : fx.guests) {
    vmm.resume_domain_on_memory(g->name(), g.get(), [&](DomainId) { ++resumed; });
  }
  while (resumed < 4 && fx.sim.pending_events() > 0) fx.sim.step();
  ASSERT_EQ(resumed, 4);
  const auto total = fx.sim.now() - t0;
  // Four resumes serialised at ~0.37 s each, plus the parallel tail.
  EXPECT_GT(total, sim::from_seconds(1.0));
  EXPECT_LT(total, sim::from_seconds(3.0));
}

TEST(SuspendResume, BalloonedDomainSurvivesWarmRebootWithHolesIntact) {
  // Section 4.1: the P2M table "can maintain the mapping properly" under
  // ballooning -- including across a full warm-VM reboot.
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  const DomainId id = fx.guests[0]->domain_id();
  mm::BalloonDriver balloon(id, vmm.allocator(), vmm.domain(id).p2m());
  ASSERT_EQ(balloon.inflate(5000), 5000);
  const auto populated_before = vmm.domain(id).p2m().populated();
  vmm.guest_write(id, 42, 0xcafe);

  fx.rejuvenate(rejuv::RebootKind::kWarm);

  const DomainId nid = fx.guests[0]->domain_id();
  EXPECT_EQ(fx.host->vmm().domain(nid).p2m().populated(), populated_before);
  EXPECT_EQ(fx.host->vmm().domain(nid).p2m().pfn_count(), 262144);
  EXPECT_EQ(fx.host->vmm().guest_read(nid, 42), 0xcafeu);
  EXPECT_EQ(fx.host->vmm().allocator().owned_frames(nid), populated_before);
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  // The balloon can deflate again under the new VMM instance.
  mm::BalloonDriver balloon2(nid, fx.host->vmm().allocator(),
                             fx.host->vmm().domain(nid).p2m());
  EXPECT_EQ(balloon2.deflate(5000), 5000);
}

TEST(SuspendResume, CannotSuspendDomainZero) {
  HostFixture fx(0);
  EXPECT_THROW(fx.host->vmm().suspend_domain_on_memory(kDomain0, [] {}),
               InvariantViolation);
}

TEST(SuspendResume, ResumeWithoutPreservedImageThrows) {
  HostFixture fx(1);
  EXPECT_THROW(fx.host->vmm().resume_domain_on_memory(
                   "no-such-vm", fx.guests[0].get(), [](DomainId) {}),
               InvariantViolation);
}

}  // namespace
}  // namespace rh::test
