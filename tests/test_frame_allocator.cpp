#include <gtest/gtest.h>

#include "mm/frame_allocator.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(FrameAllocator, AllocateAssignsOwnership) {
  mm::FrameAllocator a(100);
  const auto frames = a.allocate(1, 10);
  EXPECT_EQ(frames.size(), std::size_t{10});
  EXPECT_EQ(a.free_frames(), 90);
  EXPECT_EQ(a.owned_frames(1), 10);
  for (const auto f : frames) EXPECT_EQ(a.owner_of(f), 1);
}

TEST(FrameAllocator, NoDoubleAllocation) {
  mm::FrameAllocator a(100);
  const auto f1 = a.allocate(1, 50);
  const auto f2 = a.allocate(2, 50);
  std::vector<bool> seen(100, false);
  for (const auto f : f1) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(f)]);
    seen[static_cast<std::size_t>(f)] = true;
  }
  for (const auto f : f2) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(f)]);
    seen[static_cast<std::size_t>(f)] = true;
  }
}

TEST(FrameAllocator, ExhaustionThrowsWithoutSideEffects) {
  mm::FrameAllocator a(100);
  a.allocate(1, 90);
  EXPECT_THROW(a.allocate(2, 20), mm::OutOfMachineMemory);
  EXPECT_EQ(a.free_frames(), 10);
  EXPECT_EQ(a.owned_frames(2), 0);
}

TEST(FrameAllocator, ReleaseReturnsToPool) {
  mm::FrameAllocator a(100);
  const auto frames = a.allocate(1, 10);
  a.release(frames[0]);
  EXPECT_EQ(a.free_frames(), 91);
  EXPECT_EQ(a.owner_of(frames[0]), kNoDomain);
  EXPECT_THROW(a.release(frames[0]), InvariantViolation);  // double free
}

TEST(FrameAllocator, ReleaseAllFreesEverything) {
  mm::FrameAllocator a(100);
  a.allocate(1, 30);
  a.allocate(2, 20);
  EXPECT_EQ(a.release_all(1), 30);
  EXPECT_EQ(a.free_frames(), 80);
  EXPECT_EQ(a.owned_frames(1), 0);
  EXPECT_EQ(a.owned_frames(2), 20);
  EXPECT_EQ(a.release_all(1), 0);  // idempotent
}

TEST(FrameAllocator, ClaimTakesExactFrames) {
  mm::FrameAllocator a(100);
  const std::vector<hw::FrameNumber> wanted{5, 17, 42};
  a.claim(7, wanted);
  for (const auto f : wanted) EXPECT_EQ(a.owner_of(f), 7);
  EXPECT_EQ(a.free_frames(), 97);
  // Claiming an owned frame fails atomically (nothing is taken).
  EXPECT_THROW(a.claim(8, std::vector<hw::FrameNumber>{1, 17}),
               InvariantViolation);
  EXPECT_EQ(a.owner_of(1), kNoDomain);
}

TEST(FrameAllocator, ReusesReleasedFramesAfterWrap) {
  mm::FrameAllocator a(10);
  const auto first = a.allocate(1, 10);
  a.release_all(1);
  const auto second = a.allocate(2, 10);  // cursor wraps
  EXPECT_EQ(second.size(), std::size_t{10});
  EXPECT_EQ(a.free_frames(), 0);
}

TEST(FrameAllocator, FramesOwnedByAscending) {
  mm::FrameAllocator a(50);
  a.allocate(1, 5);
  a.allocate(2, 5);
  a.allocate(1, 5);
  const auto mine = a.frames_owned_by(1);
  EXPECT_EQ(mine.size(), std::size_t{10});
  for (std::size_t i = 1; i < mine.size(); ++i) EXPECT_LT(mine[i - 1], mine[i]);
}

TEST(FrameAllocator, FrameConservationInvariant) {
  mm::FrameAllocator a(1000);
  a.allocate(1, 100);
  a.allocate(2, 200);
  a.claim(3, std::vector<hw::FrameNumber>{900, 901});
  a.release_all(2);
  EXPECT_EQ(a.free_frames() + a.owned_frames(1) + a.owned_frames(2) +
                a.owned_frames(3),
            a.total_frames());
}

}  // namespace
}  // namespace rh::test
