// The XenStore control-plane store and its lifecycle integration.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "vmm/xenstore.hpp"

namespace rh::test {
namespace {

TEST(XenStore, WriteReadHierarchy) {
  vmm::XenStore xs;
  xs.write("/local/domain/1/name", "vm0");
  xs.write("/local/domain/1/memory/target", "1048576");
  EXPECT_EQ(xs.read("/local/domain/1/name").value(), "vm0");
  EXPECT_EQ(xs.read("/local/domain/1/memory/target").value(), "1048576");
  // Intermediate nodes exist with empty values.
  EXPECT_TRUE(xs.exists("/local/domain"));
  EXPECT_EQ(xs.read("/local/domain").value(), "");
  EXPECT_FALSE(xs.read("/local/domain/2").has_value());
  EXPECT_EQ(xs.node_count(), std::size_t{6});
}

TEST(XenStore, OverwriteKeepsSingleNode) {
  vmm::XenStore xs;
  xs.write("/a", "1");
  const auto nodes = xs.node_count();
  const auto bytes = xs.memory_footprint();
  xs.write("/a", "22");
  EXPECT_EQ(xs.node_count(), nodes);
  EXPECT_EQ(xs.memory_footprint(), bytes + 1);  // value grew by one byte
  EXPECT_EQ(xs.read("/a").value(), "22");
}

TEST(XenStore, ListChildren) {
  vmm::XenStore xs;
  xs.write("/local/domain/1/name", "a");
  xs.write("/local/domain/2/name", "b");
  xs.write("/local/domain/10/name", "c");
  const auto kids = xs.list("/local/domain");
  EXPECT_EQ(kids.size(), std::size_t{3});
  EXPECT_TRUE(xs.list("/nope").empty());
  EXPECT_TRUE(xs.list("/local/domain/1/name").empty());
}

TEST(XenStore, SubtreeRemovalReclaimsEverything) {
  vmm::XenStore xs;
  xs.write("/keep", "k");
  const auto baseline_nodes = xs.node_count();
  const auto baseline_bytes = xs.memory_footprint();
  xs.write("/local/domain/1/name", "vm0");
  xs.write("/local/domain/1/device/vbd/768/state", "4");
  const auto removed = xs.remove("/local/domain/1");
  EXPECT_EQ(removed, std::size_t{6});  // 1, name, device, vbd, 768, state
  // Exact byte/node accounting: back to the pre-subtree footprint plus
  // the /local/domain parents that remain.
  xs.remove("/local");
  EXPECT_EQ(xs.node_count(), baseline_nodes);
  EXPECT_EQ(xs.memory_footprint(), baseline_bytes);
  EXPECT_EQ(xs.remove("/never/was"), std::size_t{0});
}

TEST(XenStore, PathValidation) {
  vmm::XenStore xs;
  EXPECT_THROW(xs.write("noslash", "x"), InvariantViolation);
  EXPECT_THROW(xs.write("/a//b", "x"), InvariantViolation);
  EXPECT_THROW(xs.write("", "x"), InvariantViolation);
}

TEST(XenStore, WatchesFireOnPrefix) {
  vmm::XenStore xs;
  std::vector<std::string> fired;
  const auto id = xs.watch("/local/domain/1",
                           [&](const std::string& p) { fired.push_back(p); });
  xs.write("/local/domain/1/name", "vm0");      // under prefix: fires
  xs.write("/local/domain/10/name", "other");   // sibling: must NOT fire
  xs.write("/local/domain/1", "self");          // exact prefix: fires
  xs.remove("/local/domain/1");                 // removal: fires
  EXPECT_EQ(fired.size(), std::size_t{3});
  xs.unwatch(id);
  xs.write("/local/domain/1/name", "again");
  EXPECT_EQ(fired.size(), std::size_t{3});
}

TEST(XenStore, ClearModelsDaemonRestart) {
  vmm::XenStore xs;
  xs.write("/a/b", "x");
  xs.watch("/a", [](const std::string&) {});
  xs.clear();
  EXPECT_EQ(xs.node_count(), std::size_t{0});
  EXPECT_EQ(xs.memory_footprint(), 0);
  EXPECT_EQ(xs.watch_count(), std::size_t{0});
  EXPECT_FALSE(xs.exists("/a"));
}

// ------------------------------------------------ lifecycle integration

TEST(XenStoreIntegration, DomainLifecycleMaintainsEntries) {
  HostFixture fx(1);
  auto& xs = fx.host->xenstore();
  const auto id = std::to_string(fx.guests[0]->domain_id());
  EXPECT_EQ(xs.read("/local/domain/" + id + "/name").value(), "vm0");
  EXPECT_EQ(xs.read("/local/domain/" + id + "/device/vif/0/state").value(), "4");
  EXPECT_TRUE(xs.exists("/vm/vm0/uuid"));

  bool halted = false;
  fx.guests[0]->shutdown([&] { halted = true; });
  run_until_flag(fx.sim, halted);
  EXPECT_FALSE(xs.exists("/local/domain/" + id));
  EXPECT_FALSE(xs.exists("/vm/vm0"));
}

TEST(XenStoreIntegration, WarmRebootRebuildsStoreWithResumedDomains) {
  HostFixture fx(2);
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  auto& xs = fx.host->xenstore();
  for (auto& g : fx.guests) {
    const auto id = std::to_string(g->domain_id());
    EXPECT_EQ(xs.read("/local/domain/" + id + "/name").value(), g->name());
  }
  // No stale entries from the previous VMM generation's domain ids.
  EXPECT_EQ(xs.list("/local/domain").size(), std::size_t{3});  // dom0 + 2
}

TEST(XenStoreIntegration, WatchObservesDomainCreation) {
  HostFixture fx(0);
  std::vector<std::string> events;
  fx.host->xenstore().watch(
      "/local/domain", [&](const std::string& p) { events.push_back(p); });
  fx.host->vmm().create_domain_now("watched", 16 * sim::kMiB, nullptr);
  EXPECT_GE(events.size(), std::size_t{2});  // name + memory + devices
}

}  // namespace
}  // namespace rh::test
