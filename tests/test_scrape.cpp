// Telemetry plane (DESIGN.md §15): Prometheus rendering/parsing, the
// time-series store, SLO evaluation, and scraping under failure.
#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/metrics_scraper.hpp"
#include "obs/export.hpp"
#include "obs/metrics_exporter.hpp"
#include "obs/observer.hpp"
#include "obs/prometheus.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

// ------------------------------------------------------------ fmt_double

TEST(FmtDouble, ShortestFormRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, -2.5, 0.0, 1e300, 6.02214076e23,
                         0.015625, -0.0, 123456789.123456789}) {
    const std::string s = obs::fmt_double(v);
    double back = 0.0;
    const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_EQ(ec, std::errc{}) << s;
    ASSERT_EQ(end, s.data() + s.size()) << s;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v))
        << s;
  }
  // Locale-independent: never a comma, always the shortest form.
  EXPECT_EQ(obs::fmt_double(0.1), "0.1");
  EXPECT_EQ(obs::fmt_double(-2.5), "-2.5");
  EXPECT_EQ(obs::fmt_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(obs::fmt_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(obs::fmt_double(std::nan("")), "nan");
}

// ---------------------------------------------------- Prometheus renderer

TEST(Prometheus, NameSanitisation) {
  EXPECT_EQ(obs::prometheus_name("host.load"), "host_load");
  EXPECT_EQ(obs::prometheus_name("obs.ring_dropped"), "obs_ring_dropped");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prometheus_name("a:b"), "a:b");
  EXPECT_EQ(obs::prometheus_name(""), "_");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(obs::prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(obs::prometheus_label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, GoldenRender) {
  obs::MetricsRegistry m;
  // Registered out of sorted order on purpose: the renderer must sort.
  m.counter("host.requests") = 7;
  m.counter("host.aborts") = 2;
  m.gauge("host.load") = 12.5;
  m.histogram("req_us").add(1000);
  m.histogram("req_us").add(3'000'000);
  m.summary("think.s").add(2.5);
  m.summary("think.s").add(7.5);
  std::ostringstream os;
  obs::write_prometheus_text(os, m, "h\"0");
  // Bucket uppers: 1000 lands in [, 1024), 3'000'000 in [, 3145728).
  const std::string expected =
      "# TYPE host_aborts counter\n"
      "host_aborts{instance=\"h\\\"0\"} 2\n"
      "# TYPE host_requests counter\n"
      "host_requests{instance=\"h\\\"0\"} 7\n"
      "# TYPE host_load gauge\n"
      "host_load{instance=\"h\\\"0\"} 12.5\n"
      "# TYPE req_us histogram\n"
      "req_us_bucket{instance=\"h\\\"0\",le=\"1024\"} 1\n"
      "req_us_bucket{instance=\"h\\\"0\",le=\"3145728\"} 2\n"
      "req_us_bucket{instance=\"h\\\"0\",le=\"+Inf\"} 2\n"
      "req_us_sum{instance=\"h\\\"0\"} 3001000\n"
      "req_us_count{instance=\"h\\\"0\"} 2\n"
      "# TYPE think_s summary\n"
      "think_s{instance=\"h\\\"0\",quantile=\"0\"} 2.5\n"
      "think_s{instance=\"h\\\"0\",quantile=\"1\"} 7.5\n"
      "think_s_sum{instance=\"h\\\"0\"} 10\n"
      "think_s_count{instance=\"h\\\"0\"} 2\n";
  EXPECT_EQ(os.str(), expected);
  // Same registry, same bytes: the render is a pure function.
  std::ostringstream again;
  obs::write_prometheus_text(again, m, "h\"0");
  EXPECT_EQ(again.str(), os.str());
}

TEST(Prometheus, ParseBackRoundTripsBitExactly) {
  obs::MetricsRegistry m;
  m.counter("c.total") = 123456789012345ull;
  m.gauge("g.pi") = 3.141592653589793;
  m.gauge("g.inf") = std::numeric_limits<double>::infinity();
  m.gauge("g.tiny") = 5e-324;  // smallest subnormal
  m.histogram("h_us").add(42);
  m.summary("s.v").add(-1.25);
  std::ostringstream os;
  obs::write_prometheus_text(os, m, "host-3");
  std::map<std::string, double> parsed;
  obs::parse_prometheus_text(os.str(),
                             [&](std::string_view key, double value) {
                               parsed[std::string(key)] = value;
                             });
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  ASSERT_TRUE(parsed.count("c_total"));
  EXPECT_EQ(parsed["c_total"], 123456789012345.0);
  ASSERT_TRUE(parsed.count("g_pi"));
  EXPECT_EQ(bits(parsed["g_pi"]), bits(3.141592653589793));
  ASSERT_TRUE(parsed.count("g_inf"));
  EXPECT_TRUE(std::isinf(parsed["g_inf"]));
  ASSERT_TRUE(parsed.count("g_tiny"));
  EXPECT_EQ(bits(parsed["g_tiny"]), bits(5e-324));
  // The instance label is stripped; other labels survive as key text.
  ASSERT_TRUE(parsed.count("h_us_bucket{le=\"+Inf\"}"));
  EXPECT_EQ(parsed["h_us_bucket{le=\"+Inf\"}"], 1.0);
  ASSERT_TRUE(parsed.count("s_v{quantile=\"0\"}"));
  EXPECT_EQ(bits(parsed["s_v{quantile=\"0\"}"]), bits(-1.25));
  // Malformed lines are skipped, not fatal.
  obs::parse_prometheus_text("garbage\nname{unterminated 1\n# c\n\n",
                             [&](std::string_view, double) { FAIL(); });
}

// ------------------------------------------------------- MetricsExporter

TEST(MetricsExporter, ServesWhileServingDropsWhileDown) {
  obs::Observer obs;
  ++obs.metrics().counter("host.requests");
  bool serving = true;
  obs::MetricsExporter ex(obs, "host-0", [&serving] { return serving; });
  std::string body;
  EXPECT_TRUE(ex.handle_scrape([&body](std::string b) { body = std::move(b); }));
  EXPECT_NE(body.find("host_requests{instance=\"host-0\"} 1"),
            std::string::npos);
  // The ring-loss counters are always collected, even with emission off.
  EXPECT_NE(body.find("obs_ring_dropped"), std::string::npos);
  EXPECT_NE(body.find("obs_exporter_scrapes{instance=\"host-0\"} 1"),
            std::string::npos);
  EXPECT_EQ(ex.scrapes_served(), 1u);

  serving = false;
  body.clear();
  EXPECT_FALSE(ex.handle_scrape([&body](std::string b) { body = std::move(b); }));
  EXPECT_TRUE(body.empty());  // no reply at all: the timeout is the signal
  EXPECT_EQ(ex.scrapes_dropped(), 1u);
}

// -------------------------------------------------------- TimeSeriesStore

TEST(TimeSeriesStore, WindowWrapsAndLatestWins) {
  obs::TimeSeriesStore tsdb(1, {.window = 4});
  for (int i = 0; i < 10; ++i) {
    tsdb.ingest(0, "host_load", i * 100, static_cast<double>(i));
  }
  const auto latest = tsdb.latest(0, "host_load");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->time, 900);
  EXPECT_EQ(latest->value, 9.0);
  EXPECT_FALSE(tsdb.latest(0, "unknown").has_value());
  tsdb.for_each_series(
      0, [](std::string_view name,
            const std::vector<obs::TimeSeriesStore::Sample>& window,
            const sim::LatencyHistogram& sketch) {
        EXPECT_EQ(name, "host_load");
        ASSERT_EQ(window.size(), 4u);  // ring keeps the newest 4
        EXPECT_EQ(window.front().value, 6.0);
        EXPECT_EQ(window.back().value, 9.0);
        EXPECT_EQ(sketch.count(), 10u);  // sketch absorbs every sample
      });
  EXPECT_EQ(tsdb.samples_ingested(), 10u);
}

TEST(TimeSeriesStore, StalenessIsPerInstanceAndSticky) {
  obs::TimeSeriesStore tsdb(2);
  tsdb.ingest(0, "x", 10, 1.0);
  tsdb.mark_stale(0, 500);
  tsdb.mark_stale(0, 900);  // first mark wins
  EXPECT_TRUE(tsdb.stale(0));
  EXPECT_EQ(tsdb.stale_since(0), 500);
  EXPECT_FALSE(tsdb.stale(1));
  // Stale instances still answer latest(): last-known is the signal.
  EXPECT_TRUE(tsdb.latest(0, "x").has_value());
  tsdb.mark_fresh(0);
  EXPECT_FALSE(tsdb.stale(0));
}

TEST(TimeSeriesStore, DigestTracksContent) {
  obs::TimeSeriesStore a(2), b(2);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  a.ingest(0, "x", 10, 1.5);
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.ingest(0, "x", 10, 1.5);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  a.mark_stale(1, 99);
  EXPECT_NE(a.state_digest(), b.state_digest());
}

// ----------------------------------------------------------- SloEvaluator

TEST(SloEvaluator, BurnRateGateEngagesAndCools) {
  obs::SloEvaluator slo(4, {.availability_target = 0.99,
                            .pause_burn_rate = 2.0,
                            .window_rounds = 4,
                            .dark_after_misses = 3});
  EXPECT_FALSE(slo.admission_paused());
  // One bad round: 1 miss in 4 -> 25 % error rate -> burn 25 >> 2.
  slo.record(0, false);
  for (std::size_t h = 1; h < 4; ++h) slo.record(h, true);
  slo.end_round();
  EXPECT_TRUE(slo.admission_paused());
  EXPECT_NEAR(slo.burn_rate(), 25.0, 1e-9);
  // Three clean rounds dilute the window below the threshold...
  for (int r = 0; r < 3; ++r) {
    for (std::size_t h = 0; h < 4; ++h) slo.record(h, true);
    slo.end_round();
  }
  EXPECT_TRUE(slo.admission_paused());  // 1/16 -> burn 6.25, still hot
  // ...and the fourth pushes the bad round out entirely.
  for (std::size_t h = 0; h < 4; ++h) slo.record(h, true);
  slo.end_round();
  EXPECT_FALSE(slo.admission_paused());
  EXPECT_EQ(slo.burn_rate(), 0.0);
}

TEST(SloEvaluator, DarkTransitionFiresOnceUntilReset) {
  obs::SloEvaluator slo(2, {.dark_after_misses = 3});
  EXPECT_FALSE(slo.record(0, false));
  EXPECT_FALSE(slo.record(0, false));
  EXPECT_TRUE(slo.record(0, false));  // exactly the 3rd consecutive miss
  EXPECT_FALSE(slo.record(0, false));  // already dark: no re-transition
  EXPECT_TRUE(slo.dark(0));
  EXPECT_FALSE(slo.dark(1));
  EXPECT_EQ(slo.dark_hosts(), 1u);
  EXPECT_FALSE(slo.record(0, true));  // an answer clears the flag
  EXPECT_FALSE(slo.dark(0));
  EXPECT_FALSE(slo.record(0, false));
  EXPECT_FALSE(slo.record(0, false));
  EXPECT_TRUE(slo.record(0, false));  // and the count starts over
}

// ------------------------------------------------- scraping the cluster

struct ScrapeRig {
  sim::Simulation sim;
  cluster::Cluster cl;

  static cluster::Cluster::Config config(int hosts, bool observe) {
    cluster::Cluster::Config c;
    c.hosts = hosts;
    c.vms_per_host = 2;
    c.files_per_vm = 4;
    c.observe = observe;
    return c;
  }

  explicit ScrapeRig(int hosts = 3, bool observe = false)
      : cl(sim, config(hosts, observe)) {
    bool ready = false;
    cl.start([&ready] { ready = true; });
    while (!ready && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(ready);
  }
};

cluster::Cluster::ScrapeConfig fast_scrape() {
  cluster::Cluster::ScrapeConfig sc;
  sc.interval = sim::kSecond;
  sc.timeout = 200 * sim::kMillisecond;
  return sc;
}

TEST(Scrape, RoundsIngestEveryHost) {
  ScrapeRig rig(3);
  rig.cl.start_scraping(fast_scrape());
  rig.sim.run_for(3 * sim::kSecond + 500 * sim::kMillisecond);
  cluster::MetricsScraper& s = *rig.cl.scraper();
  EXPECT_EQ(s.stats().rounds_completed, 3u);
  EXPECT_EQ(s.stats().scrapes_ok, 9u);
  EXPECT_EQ(s.stats().scrapes_failed, 0u);
  EXPECT_GT(s.stats().bytes_transferred, 0u);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_FALSE(s.tsdb().stale(h));
    const auto load = s.tsdb().latest(h, "host_load");
    ASSERT_TRUE(load.has_value()) << "host " << h;
    EXPECT_EQ(load->value, 0.0);  // idle cluster
    EXPECT_TRUE(s.tsdb().latest(h, "host_vmm_generation").has_value());
    EXPECT_TRUE(s.tsdb().latest(h, "obs_ring_events").has_value());
  }
}

TEST(Scrape, CrashedHostTimesOutWithoutStallingTheRound) {
  ScrapeRig rig(3);
  rig.cl.start_scraping(fast_scrape());
  rig.sim.run_for(2 * sim::kSecond + 500 * sim::kMillisecond);  // 2 clean rounds
  // Dom0 leaves kRunning immediately, so the exporter stops serving now
  // (the shutdown itself takes ~10 simulated seconds to finish).
  rig.cl.host(0).shutdown_dom0([] {});
  ASSERT_FALSE(rig.cl.host(0).up());
  rig.sim.run_for(6 * sim::kSecond);
  cluster::MetricsScraper& s = *rig.cl.scraper();
  // Rounds keep completing: the dead host's timeout resolves its slot.
  EXPECT_GE(s.stats().rounds_completed, 7u);
  EXPECT_GE(s.stats().scrapes_failed, 4u);
  // Only host 0 fails; the others stay fresh.
  EXPECT_TRUE(s.tsdb().stale(0));
  EXPECT_FALSE(s.tsdb().stale(1));
  EXPECT_FALSE(s.tsdb().stale(2));
  // Three consecutive misses flipped it dark -- from telemetry alone.
  EXPECT_TRUE(s.slo().dark(0));
  EXPECT_EQ(s.slo().dark_hosts(), 1u);
  // The requests still arrive at the host; the exporter refuses them and
  // never replies, which is exactly what the timeouts observed.
  EXPECT_GT(s.exporter(0).scrapes_dropped(), 0u);
  // Last-known samples survive staleness (the control plane acts on them).
  EXPECT_TRUE(s.tsdb().latest(0, "host_load").has_value());
}

TEST(Scrape, StaleSeriesRefreshAfterPlannedRecovery) {
  ScrapeRig rig(2);
  rig.cl.start_scraping(fast_scrape());
  rig.sim.run_for(2 * sim::kSecond + 500 * sim::kMillisecond);
  // A warm rolling pass takes each host down well past the scrape
  // timeout; its scrapes fail while it reboots and recover afterwards.
  bool done = false;
  cluster::Cluster::WaveConfig wc;
  wc.wave_size = 1;
  rig.cl.rolling_rejuvenation_waves(
      wc, [&done](const cluster::Cluster::WaveReport&) { done = true; });
  rig.sim.run_for(5 * sim::kMinute);
  ASSERT_TRUE(done);
  rig.sim.run_for(2 * sim::kSecond);  // one more clean round post-pass
  cluster::MetricsScraper& s = *rig.cl.scraper();
  EXPECT_GT(s.stats().scrapes_failed, 0u);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_FALSE(s.tsdb().stale(h)) << "host " << h;
    EXPECT_FALSE(s.slo().dark(h)) << "host " << h;
    // The reboot bumped the scraped generation counter.
    const auto gen = s.tsdb().latest(h, "host_vmm_generation");
    ASSERT_TRUE(gen.has_value());
    EXPECT_GE(gen->value, 1.0);
  }
}

TEST(Scrape, BurnRateGatePausesWaveAdmission) {
  ScrapeRig rig(3);
  cluster::Cluster::ScrapeConfig sc = fast_scrape();
  sc.slo.window_rounds = 4;
  sc.slo.pause_burn_rate = 2.0;  // one dead host in 3 = burn 33: trips
  rig.cl.start_scraping(sc);
  rig.cl.host(0).shutdown_dom0([] {});
  rig.sim.run_for(3 * sim::kSecond);
  cluster::MetricsScraper& s = *rig.cl.scraper();
  ASSERT_TRUE(s.slo().admission_paused());
  bool done = false;
  cluster::Cluster::WaveConfig wc;
  wc.wave_size = 1;
  rig.cl.rolling_rejuvenation_waves(
      wc, [&done](const cluster::Cluster::WaveReport&) { done = true; });
  rig.sim.run_for(5 * sim::kMinute);
  // The gate held: no wave turn ever launched while the budget burned.
  EXPECT_FALSE(done);
  EXPECT_TRUE(rig.cl.rolling_in_progress());
}

TEST(Scrape, ScrapedWaveSignalsRequireScraping) {
  ScrapeRig rig(2);
  cluster::Cluster::WaveConfig wc;
  wc.signals = cluster::Cluster::WaveSignalSource::kScraped;
  EXPECT_THROW(rig.cl.rolling_rejuvenation_waves(
                   wc, [](const cluster::Cluster::WaveReport&) {}),
               InvariantViolation);
}

TEST(Scrape, ScrapedSignalsOrderIdleWavesLikeWireTap) {
  // Fault-free and idle: both signal sources see identical (zero) load,
  // so the wave order must agree host for host.
  auto run = [](cluster::Cluster::WaveSignalSource src) {
    ScrapeRig rig(3);
    rig.cl.start_scraping(fast_scrape());
    rig.sim.run_for(2 * sim::kSecond + 500 * sim::kMillisecond);
    cluster::Cluster::WaveConfig wc;
    wc.wave_size = 1;
    wc.signals = src;
    bool done = false;
    cluster::Cluster::WaveReport out;
    rig.cl.rolling_rejuvenation_waves(
        wc, [&](const cluster::Cluster::WaveReport& r) {
          done = true;
          out = r;
        });
    rig.sim.run_for(10 * sim::kMinute);
    EXPECT_TRUE(done);
    std::vector<std::size_t> order;
    for (const auto& w : out.waves) {
      order.insert(order.end(), w.hosts.begin(), w.hosts.end());
    }
    return order;
  };
  const auto wire = run(cluster::Cluster::WaveSignalSource::kWireTap);
  const auto scraped = run(cluster::Cluster::WaveSignalSource::kScraped);
  ASSERT_EQ(wire.size(), 3u);
  EXPECT_EQ(wire, scraped);
}

TEST(Scrape, FlightRecordDumpsSeriesAndEventTail) {
  ScrapeRig rig(2, /*observe=*/true);
  rig.cl.start_scraping(fast_scrape());
  rig.sim.run_for(3 * sim::kSecond);
  // The host's last words before the outage: the dump must carry the
  // ring tail (a quiet host emits nothing on a plain dom0 shutdown).
  for (int i = 0; i < 3; ++i) {
    rig.cl.host(0).obs().emit(rig.sim.now(), obs::Category::kHost,
                              obs::EventKind::kMark, "pre-outage", 0,
                              static_cast<std::uint64_t>(i));
  }
  rig.cl.host(0).shutdown_dom0([] {});
  rig.sim.run_for(5 * sim::kSecond);  // enough misses to go dark
  cluster::MetricsScraper& s = *rig.cl.scraper();
  ASSERT_TRUE(s.slo().dark(0));
  std::ostringstream os;
  s.write_flight_record(os, 0);
  const std::string rec = os.str();
  EXPECT_NE(rec.find("\"instance\": \"host-0\""), std::string::npos);
  EXPECT_NE(rec.find("\"dark\": true"), std::string::npos);
  EXPECT_NE(rec.find("\"stale\": true"), std::string::npos);
  EXPECT_NE(rec.find("\"name\": \"host_load\""), std::string::npos);
  EXPECT_NE(rec.find("\"sketch\""), std::string::npos);
  // Observability was on, so the host's typed events ride along.
  EXPECT_NE(rec.find("\"events\": ["), std::string::npos);
  EXPECT_NE(rec.find("\"category\""), std::string::npos);
  EXPECT_EQ(rec.front(), '{');
  EXPECT_EQ(rec.back(), '\n');
}

TEST(Scrape, ConfigValidation) {
  ScrapeRig rig(2);
  cluster::Cluster::ScrapeConfig sc;
  sc.interval = sim::kSecond;
  sc.timeout = 2 * sim::kSecond;  // timeout >= interval: rounds overlap
  EXPECT_THROW(rig.cl.start_scraping(sc), InvariantViolation);
  sc.timeout = 100;  // <= round trip of the 200 us link
  EXPECT_THROW(rig.cl.start_scraping(sc), InvariantViolation);
  rig.cl.start_scraping(fast_scrape());
  EXPECT_THROW(rig.cl.start_scraping(fast_scrape()), InvariantViolation);
}

TEST(Scrape, StateDigestIsReproducible) {
  auto digest = [] {
    ScrapeRig rig(3);
    rig.cl.start_scraping(fast_scrape());
    rig.sim.run_for(2 * sim::kSecond + 500 * sim::kMillisecond);
    rig.cl.host(0).shutdown_dom0([] {});
    rig.sim.run_for(5 * sim::kSecond);
    return rig.cl.scraper()->state_digest();
  };
  EXPECT_EQ(digest(), digest());
}

}  // namespace
}  // namespace rh::test
