#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/simulation.hpp"

namespace rh::test {
namespace {

TEST(Simulation, TimeAdvancesWithEvents) {
  sim::Simulation s;
  sim::SimTime seen = -1;
  s.after(500, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulation, NestedSchedulingWorks) {
  sim::Simulation s;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) s.after(10, recur);
  };
  s.after(10, recur);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(Simulation, RunUntilStopsAtDeadlineAndSetsNow) {
  sim::Simulation s;
  int fired = 0;
  s.after(10, [&] { ++fired; });
  s.after(100, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending_events(), std::size_t{1});
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventAtDeadlineIsIncluded) {
  sim::Simulation s;
  bool fired = false;
  s.after(50, [&] { fired = true; });
  s.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulation, StopInterruptsRun) {
  sim::Simulation s;
  int fired = 0;
  s.after(1, [&] {
    ++fired;
    s.stop();
  });
  s.after(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  sim::Simulation s;
  bool fired = false;
  const auto id = s.after(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, SchedulingInPastThrows) {
  sim::Simulation s;
  s.after(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), InvariantViolation);
  EXPECT_THROW(s.after(-1, [] {}), InvariantViolation);
}

TEST(Simulation, ZeroDelayRunsAtCurrentTime) {
  sim::Simulation s;
  s.after(10, [&] {
    s.after(0, [&] { EXPECT_EQ(s.now(), 10); });
  });
  s.run();
  EXPECT_EQ(s.now(), 10);
}

TEST(Simulation, CountsExecutedEvents) {
  sim::Simulation s;
  for (int i = 0; i < 7; ++i) s.after(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), std::uint64_t{7});
}

TEST(Simulation, RunForAdvancesRelative) {
  sim::Simulation s;
  s.after(10, [] {});
  s.run();
  s.run_for(90);
  EXPECT_EQ(s.now(), 100);
}

}  // namespace
}  // namespace rh::test
