// Observability subsystem tests (ctest label `obs`): event ring bounds,
// span-nesting invariants, metrics-merge determinism across thread
// counts, the zero-work-when-disabled contract, and the span tree's
// agreement with the reboot drivers' bespoke accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "rejuv/supervisor.hpp"
#include "simcore/script.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

// ------------------------------------------------------------ events

TEST(EventRing, RetainsEverythingBelowTheCap) {
  obs::EventRing ring(2);
  for (std::size_t i = 0; i < 100; ++i) {
    obs::TraceEvent& e = ring.push();
    e.time = static_cast<sim::SimTime>(i);
    e.set_label("evt");
  }
  EXPECT_EQ(ring.size(), std::size_t{100});
  EXPECT_EQ(ring.dropped(), 0u);
  sim::SimTime expect = 0;
  ring.for_each([&](const obs::TraceEvent& e) { EXPECT_EQ(e.time, expect++); });
  EXPECT_EQ(expect, 100);
}

TEST(EventRing, RecyclesTheOldestSlabAtTheCap) {
  obs::EventRing ring(2);
  const std::size_t n = 3 * obs::EventRing::kSlabEvents;
  for (std::size_t i = 0; i < n; ++i) {
    ring.push().time = static_cast<sim::SimTime>(i);
  }
  // Two slabs retained, one recycled: the oldest kSlabEvents are gone.
  EXPECT_EQ(ring.size(), 2 * obs::EventRing::kSlabEvents);
  EXPECT_EQ(ring.dropped(), obs::EventRing::kSlabEvents);
  sim::SimTime first = -1;
  bool got_first = false;
  ring.for_each([&](const obs::TraceEvent& e) {
    if (!got_first) {
      first = e.time;
      got_first = true;
    }
  });
  EXPECT_EQ(first, static_cast<sim::SimTime>(obs::EventRing::kSlabEvents));
}

TEST(EventRing, RecyclingStatsMakeTraceLossObservable) {
  obs::EventRing ring(2);
  EXPECT_EQ(ring.slabs(), 0u);  // slabs allocate lazily
  ring.push();
  EXPECT_EQ(ring.slabs(), 1u);
  EXPECT_EQ(ring.recycled_slabs(), 0u);
  const std::size_t n = 4 * obs::EventRing::kSlabEvents;
  for (std::size_t i = 1; i < n; ++i) ring.push();
  EXPECT_EQ(ring.slabs(), 2u);  // bounded by the cap
  EXPECT_EQ(ring.recycled_slabs(), 2u);
  EXPECT_EQ(ring.dropped(), 2 * obs::EventRing::kSlabEvents);
  ring.clear();
  EXPECT_EQ(ring.recycled_slabs(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Observer, MirrorsRingStatsIntoMetricsEvenWhenDisabled) {
  obs::Observer obs;
  obs.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    obs.emit(i, obs::Category::kHost, obs::EventKind::kMark, "m");
  }
  obs.mirror_ring_stats();
  EXPECT_EQ(obs.metrics().counter("obs.ring_events"), 3u);
  EXPECT_EQ(obs.metrics().counter("obs.ring_dropped"), 0u);
  EXPECT_EQ(obs.metrics().counter("obs.ring_slabs"), 1u);
  EXPECT_EQ(obs.metrics().counter("obs.ring_recycled_slabs"), 0u);
  // Exporters collect with emission off (scraping does not imply
  // observing): the mirror must not be gated on enabled().
  obs::Observer quiet;
  quiet.mirror_ring_stats();
  EXPECT_EQ(quiet.metrics().counter("obs.ring_events"), 0u);
}

TEST(TraceEvent, LabelIsTruncatedNotOverrun) {
  obs::TraceEvent e;
  e.set_label(std::string(100, 'x'));
  EXPECT_EQ(std::strlen(e.label), sizeof e.label - 1);
}

// ------------------------------------------------------------- spans

TEST(SpanRecorder, NestingAndChildLookup) {
  obs::SpanRecorder rec;
  const auto pass = rec.open(10, obs::Phase::kPass, "pass");
  const auto a = rec.open(10, obs::Phase::kStep, "suspend", pass);
  rec.close(a, 20);
  const auto b = rec.open(20, obs::Phase::kStep, "resume", pass);
  rec.close(b, 30);
  rec.close(pass, 30);
  EXPECT_EQ(rec.open_count(), std::size_t{0});
  const auto kids = rec.children_of(pass);
  ASSERT_EQ(kids.size(), std::size_t{2});
  EXPECT_STREQ(rec.records()[kids[0]].label, "suspend");
  EXPECT_STREQ(rec.records()[kids[1]].label, "resume");
  EXPECT_EQ(rec.records()[pass].duration(), 20);
}

TEST(SpanRecorder, RejectsDoubleClose) {
  obs::SpanRecorder rec;
  const auto id = rec.open(0, obs::Phase::kStep, "s");
  rec.close(id, 1);
  EXPECT_THROW(rec.close(id, 2), InvariantViolation);
}

TEST(SpanRecorder, RejectsUnknownSpanAndParent) {
  obs::SpanRecorder rec;
  EXPECT_THROW(rec.close(5, 1), InvariantViolation);
  EXPECT_THROW(rec.open(0, obs::Phase::kStep, "s", 7), InvariantViolation);
}

TEST(SpanRecorder, RejectsNonMonotonicClose) {
  obs::SpanRecorder rec;
  const auto id = rec.open(10, obs::Phase::kStep, "s");
  EXPECT_THROW(rec.close(id, 9), InvariantViolation);
  EXPECT_THROW(rec.complete(10, 9, obs::Phase::kStep, "c"), InvariantViolation);
}

// ---------------------------------------------------------- observer

TEST(Observer, DisabledDoesNoWorkAndNoBookkeeping) {
  obs::Observer obs;
  ASSERT_FALSE(obs.enabled());
  obs.emit(1, obs::Category::kVmm, obs::EventKind::kMark, "x");
  const auto id = obs.span_open(1, obs::Phase::kStep, "x");
  EXPECT_EQ(id, obs::kNoSpan);
  obs.span_close(id, 2);  // no-op, must not throw
  obs.span_complete(1, 2, obs::Phase::kStep, "x");
  obs.set_ambient(42);  // refuses: ambient state only moves when enabled
  ++obs.metrics().counter("allowed");  // registry itself is always usable
  EXPECT_EQ(obs.events().size(), std::size_t{0});
  EXPECT_TRUE(obs.spans().records().empty());
  EXPECT_EQ(obs.ambient(), obs::kNoSpan);
}

TEST(Observer, AmbientParentIsSaveSetRestore) {
  obs::Observer obs;
  obs.set_enabled(true);
  const auto pass = obs.span_open(0, obs::Phase::kPass, "pass");
  const auto outer = obs.ambient();
  obs.set_ambient(pass);
  const auto child = obs.span_open(1, obs::Phase::kQuickReload, "reload");
  EXPECT_EQ(obs.spans().records()[child].parent, pass);
  obs.span_close(child, 2);
  obs.set_ambient(outer);
  const auto sibling = obs.span_open(3, obs::Phase::kOther, "after");
  EXPECT_EQ(obs.spans().records()[sibling].parent, obs::kNoSpan);
}

// ----------------------------------------------------------- metrics

TEST(MetricsRegistry, MergesByNameAndAppendsUnknowns) {
  obs::MetricsRegistry a;
  a.counter("x") = 3;
  a.gauge("g") = 1.5;
  obs::MetricsRegistry b;
  b.counter("x") = 4;
  b.counter("y") = 1;
  b.gauge("g") = 2.0;
  a.merge(b);
  EXPECT_EQ(a.counter_value("x"), 7u);
  EXPECT_EQ(a.counter_value("y"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 3.5);
  ASSERT_EQ(a.counters().size(), std::size_t{2});
  EXPECT_EQ(a.counters()[1].name, "y");  // appended in b's order
}

TEST(MetricsRegistry, NameTypeClashThrows) {
  obs::MetricsRegistry m;
  ++m.counter("latency");
  EXPECT_THROW(m.histogram("latency"), InvariantViolation);
}

/// The replication body used by the determinism tests: metrics whose
/// merged value depends on merge order (histogram/summary) and whose
/// registration order varies across replications.
exp::ReplicationResult metrics_body(const exp::ReplicationContext& ctx) {
  obs::MetricsRegistry m;
  if (ctx.replication_index % 2 == 1) ++m.counter("odd-first");
  ++m.counter("runs");
  m.histogram("lat").add(static_cast<sim::Duration>(1 + ctx.seed % 997));
  m.summary("load").add(static_cast<double>(ctx.seed % 89) / 7.0);
  exp::ReplicationResult out;
  out.values = {0.0};
  out.metrics = std::move(m);
  return out;
}

TEST(MetricsRegistry, GridMergeIsThreadCountInvariant) {
  exp::GridSpec spec;
  spec.points = 2;
  spec.replications = 8;
  spec.root_seed = 123;
  spec.threads = 1;
  const auto one = exp::run_grid(spec, metrics_body);
  spec.threads = 4;
  const auto four = exp::run_grid(spec, metrics_body);
  const auto seq = exp::run_grid_sequential(spec, metrics_body);
  for (std::size_t p = 0; p < spec.points; ++p) {
    const auto& a = one.point(p).merged_metrics();
    const auto& b = four.point(p).merged_metrics();
    const auto& c = seq.point(p).merged_metrics();
    for (const auto* m : {&b, &c}) {
      ASSERT_EQ(a.counters().size(), m->counters().size());
      for (std::size_t i = 0; i < a.counters().size(); ++i) {
        EXPECT_EQ(a.counters()[i].name, m->counters()[i].name);
        EXPECT_EQ(a.counters()[i].value, m->counters()[i].value);
      }
      ASSERT_EQ(a.histograms().size(), m->histograms().size());
      for (std::size_t i = 0; i < a.histograms().size(); ++i) {
        EXPECT_EQ(a.histograms()[i].value.count(),
                  m->histograms()[i].value.count());
        // Bitwise: merge order is replication-index order on every path.
        EXPECT_EQ(a.histograms()[i].value.mean(),
                  m->histograms()[i].value.mean());
      }
      ASSERT_EQ(a.summaries().size(), m->summaries().size());
      for (std::size_t i = 0; i < a.summaries().size(); ++i) {
        EXPECT_EQ(a.summaries()[i].value.mean(), m->summaries()[i].value.mean());
        EXPECT_EQ(a.summaries()[i].value.stddev(),
                  m->summaries()[i].value.stddev());
      }
    }
  }
  EXPECT_EQ(one.point(0).merged_metrics().counter_value("runs"), 8u);
}

// ----------------------------------------------- integration: script

TEST(ScriptObserver, MirrorsCompletedSteps) {
  sim::Simulation sim;
  sim::Script script(sim);
  std::vector<std::string> seen;
  script.set_step_observer(
      [&seen](const sim::StepRecord& r) { seen.push_back(r.label); });
  script.step("one", [] { return sim::Duration{5}; });
  script.step_async("two", [](std::function<void()> done) { done(); });
  bool done = false;
  script.run([&done] { done = true; });
  run_until_flag(sim, done);
  ASSERT_EQ(seen.size(), std::size_t{2});
  EXPECT_EQ(seen[0], "one");
  EXPECT_EQ(seen[1], "two");
}

// ----------------------------------------------- integration: driver

TEST(DriverSpans, StepChildrenMatchBespokeBreakdown) {
  HostFixture fx(2);
  fx.host->obs().set_enabled(true);
  const auto driver = fx.rejuvenate(rejuv::RebootKind::kWarm);
  const auto& spans = fx.host->obs().spans();
  EXPECT_EQ(spans.open_count(), std::size_t{0});
  obs::SpanId pass = obs::kNoSpan;
  for (std::size_t i = 0; i < spans.records().size(); ++i) {
    if (spans.records()[i].phase == obs::Phase::kPass) {
      pass = static_cast<obs::SpanId>(i);
    }
  }
  ASSERT_NE(pass, obs::kNoSpan);
  std::vector<const obs::SpanRecord*> steps;
  for (const auto c : spans.children_of(pass)) {
    if (spans.records()[c].phase == obs::Phase::kStep) {
      steps.push_back(&spans.records()[c]);
    }
  }
  const auto& legacy = driver->breakdown();
  ASSERT_EQ(steps.size(), legacy.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i]->start, legacy[i].start);
    EXPECT_EQ(steps[i]->end, legacy[i].end);
    EXPECT_STREQ(steps[i]->label, legacy[i].label.c_str());
  }
  // The pipeline's inner phases hang off the pass span too (via the
  // ambient-parent chain): the quick reload and the VMM re-init under it.
  bool found_reload = false;
  for (const auto& r : spans.records()) {
    if (r.phase == obs::Phase::kQuickReload) {
      found_reload = true;
      EXPECT_FALSE(r.open());
    }
  }
  EXPECT_TRUE(found_reload);
}

TEST(DriverSpans, DisabledObserverRecordsNothing) {
  HostFixture fx(1);
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  EXPECT_TRUE(fx.host->obs().spans().records().empty());
  EXPECT_EQ(fx.host->obs().events().size(), std::size_t{0});
  EXPECT_TRUE(fx.host->obs().metrics().empty());
}

// ------------------------------------------- integration: supervisor

TEST(SupervisorObs, CleanPassRecordsPassRungAndMetrics) {
  HostFixture fx(2);
  fx.host->obs().set_enabled(true);
  rejuv::Supervisor sup(*fx.host, fx.guest_ptrs(), {});
  bool done = false;
  sup.run([&done](const rejuv::SupervisorReport&) { done = true; });
  run_until_flag(fx.sim, done, 4 * sim::kHour);
  const auto& obs = fx.host->obs();
  EXPECT_EQ(obs.spans().open_count(), std::size_t{0});
  bool pass = false, rung = false;
  for (const auto& r : obs.spans().records()) {
    pass |= r.phase == obs::Phase::kPass;
    rung |= r.phase == obs::Phase::kLadderRung;
  }
  EXPECT_TRUE(pass);
  EXPECT_TRUE(rung);
  EXPECT_EQ(obs.metrics().counter_value("supervisor.passes"), 1u);
  EXPECT_EQ(obs.metrics().counter_value("supervisor.vms_resumed"), 2u);
}

TEST(SupervisorObs, RecoveryActionsAreMirroredAsTypedEvents) {
  HostFixture fx(2);
  fx.host->obs().set_enabled(true);
  fx.host->configure_faults(fault::FaultConfig::uniform(1.0));
  rejuv::Supervisor sup(*fx.host, fx.guest_ptrs(), {});
  bool done = false;
  sup.run([&done](const rejuv::SupervisorReport&) { done = true; });
  run_until_flag(fx.sim, done, 12 * sim::kHour);
  const auto& obs = fx.host->obs();
  // Every RecoveryEvent of the report is mirrored into the event ring...
  std::size_t typed = 0;
  obs.events().for_each([&](const obs::TraceEvent& e) {
    if (e.kind == obs::EventKind::kRecovery) ++typed;
  });
  EXPECT_EQ(typed, sup.report().recoveries.size());
  EXPECT_GT(typed, std::size_t{0});
  // ...and counted per action in the registry.
  std::uint64_t counted = 0;
  for (const auto& c : obs.metrics().counters()) {
    if (c.name.rfind("supervisor.recovery.", 0) == 0) counted += c.value;
  }
  EXPECT_EQ(counted, typed);
}

// --------------------------------------------------------- exporters

TEST(Exporters, ChromeTraceAndMetricsJsonSmoke) {
  obs::Observer obs;
  obs.set_enabled(true);
  const auto pass = obs.span_open(1'000'000, obs::Phase::kPass, "pass");
  obs.set_ambient(pass);
  obs.span_complete(1'100'000, 1'200'000, obs::Phase::kSuspend, "suspend");
  obs.emit(1'150'000, obs::Category::kSupervisor, obs::EventKind::kRecovery,
           "step-retry");
  obs.span_close(pass, 2'000'000);
  ++obs.metrics().counter("supervisor.passes");
  obs.metrics().histogram("pass_us").add(1'000'000);

  std::ostringstream trace;
  obs::write_chrome_trace(trace, obs, /*pid=*/3, "host3");
  const std::string t = trace.str();
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(t.find("step-retry"), std::string::npos);
  EXPECT_NE(t.find("host3"), std::string::npos);
  EXPECT_EQ(t.front(), '{');
  EXPECT_EQ(t.back(), '\n');

  std::ostringstream metrics;
  obs::write_metrics_json(metrics, obs.metrics());
  const std::string m = metrics.str();
  EXPECT_NE(m.find("supervisor.passes"), std::string::npos);
  EXPECT_NE(m.find("pass_us"), std::string::npos);
}

}  // namespace
}  // namespace rh::test
