// Supervisor: the recovery ladder, step retries, watchdogs, and the
// fault-injected failure modes that drive them.
#include <gtest/gtest.h>

#include "cluster/vm_migrator.hpp"
#include "rejuv/supervisor.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

using fault::FaultConfig;
using fault::FaultKind;
using rejuv::RecoveryAction;
using rejuv::Supervisor;
using rejuv::SupervisorConfig;
using rejuv::SupervisorReport;

/// Runs a supervisor to completion; returns its report.
SupervisorReport supervise(HostFixture& fx, SupervisorConfig cfg = {}) {
  Supervisor sup(*fx.host, fx.guest_ptrs(), cfg);
  bool done = false;
  sup.run([&done](const SupervisorReport&) { done = true; });
  const sim::SimTime deadline = fx.sim.now() + 12 * sim::kHour;
  while (!done && fx.sim.pending_events() > 0 && fx.sim.now() < deadline) {
    fx.sim.step();
  }
  EXPECT_TRUE(done) << "supervised pass did not complete";
  return sup.report();
}

TEST(Supervisor, FaultFreeWarmPassResumesEveryVm) {
  HostFixture fx(2);
  const auto report = supervise(fx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.attempted, rejuv::RebootKind::kWarm);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kWarm);
  EXPECT_EQ(report.resumed_vms, std::size_t{2});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{0});
  EXPECT_TRUE(report.recoveries.empty());
  EXPECT_FALSE(report.vmm_crashed);
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(Supervisor, XexecFailureRetriesThenFallsBackToSaved) {
  HostFixture fx(2);
  FaultConfig faults;
  faults.xexec_failure_rate = 1.0;  // the warm path can never start
  fx.host->configure_faults(faults);

  const auto report = supervise(fx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.attempted, rejuv::RebootKind::kWarm);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kSaved);
  // Default budget: 2 retries, then one rung down the ladder.
  EXPECT_EQ(report.recovery_count(RecoveryAction::kStepRetry), std::size_t{2});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kFallbackToSaved),
            std::size_t{1});
  EXPECT_EQ(report.restored_vms, std::size_t{2});  // state preserved on disk
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

TEST(Supervisor, DiskWriteErrorDegradesThatVmToColdBoot) {
  HostFixture fx(2);
  FaultConfig faults;
  faults.disk_write_error_rate = 1.0;  // every save dies on the platter
  fx.host->configure_faults(faults);

  SupervisorConfig cfg;
  cfg.preferred = rejuv::RebootKind::kSaved;
  const auto report = supervise(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kSaved);
  EXPECT_EQ(report.recovery_count(RecoveryAction::kFallbackToCold),
            std::size_t{2});
  EXPECT_EQ(report.restored_vms, std::size_t{0});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});  // state lost, VMs back
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(Supervisor, CorruptPreservedImagesAreCaughtAndColdBooted) {
  HostFixture fx(2);
  FaultConfig faults;
  faults.image_corruption_rate = 1.0;  // every preserved image rots
  fx.host->configure_faults(faults);

  const auto report = supervise(fx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kWarm);
  EXPECT_EQ(report.recovery_count(RecoveryAction::kColdBootSingleVm),
            std::size_t{2});
  EXPECT_EQ(report.resumed_vms, std::size_t{0});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(Supervisor, VmmCrashForcesHardwareRebootAndColdBoots) {
  HostFixture fx(3);
  FaultConfig faults;
  faults.vmm_crash_rate = 1.0;  // aging wins the race
  fx.host->configure_faults(faults);

  const auto report = supervise(fx);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.vmm_crashed);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kCold);
  EXPECT_EQ(report.recovery_count(RecoveryAction::kHardwareRebootAfterCrash),
            std::size_t{1});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{3});
  EXPECT_TRUE(fx.host->up());
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(Supervisor, BootHangTriggersWatchdogThenGivesUp) {
  HostFixture fx(2);
  FaultConfig faults;
  faults.boot_hang_rate = 1.0;  // no boot will ever finish
  fx.host->configure_faults(faults);

  SupervisorConfig cfg;
  cfg.preferred = rejuv::RebootKind::kCold;
  cfg.max_step_retries = 1;
  const auto report = supervise(fx, cfg);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.unrecovered_vms.size(), std::size_t{2});
  // Per VM: initial attempt + 1 retry, each reaped by the watchdog.
  EXPECT_EQ(report.recovery_count(RecoveryAction::kWatchdogPowerOff),
            std::size_t{4});
  EXPECT_EQ(report.recovery_count(RecoveryAction::kGaveUp), std::size_t{2});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{0});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kHalted);
  }
}

TEST(Supervisor, RecoverBootsTheVmsAFailedPassLeftDown) {
  HostFixture fx(2);
  fx.host->configure_faults(
      [] { FaultConfig f; f.boot_hang_rate = 1.0; return f; }());
  SupervisorConfig cfg;
  cfg.preferred = rejuv::RebootKind::kCold;
  cfg.max_step_retries = 0;
  const auto failed = supervise(fx, cfg);
  ASSERT_FALSE(failed.success);

  // The operator fixed the root cause; a recovery-only pass brings the
  // halted VMs back without disturbing anything else.
  fx.host->configure_faults(FaultConfig{});
  Supervisor sup(*fx.host, fx.guest_ptrs(), cfg);
  bool done = false;
  sup.recover([&done](const SupervisorReport&) { done = true; });
  run_until_flag(fx.sim, done, 2 * sim::kHour);
  EXPECT_TRUE(sup.report().success);
  EXPECT_EQ(sup.report().cold_booted_vms, std::size_t{2});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(Supervisor, IsOneShot) {
  HostFixture fx(1);
  Supervisor sup(*fx.host, fx.guest_ptrs(), {});
  bool done = false;
  sup.run([&done](const SupervisorReport&) { done = true; });
  run_until_flag(fx.sim, done, 2 * sim::kHour);
  EXPECT_THROW(sup.run([](const SupervisorReport&) {}), InvariantViolation);
  EXPECT_THROW(sup.recover([](const SupervisorReport&) {}), InvariantViolation);
}

TEST(Supervisor, OverlappingLaddersOnOneHostAreRejectedLoudly) {
  // Regression: a second Supervisor entering any entry point while a
  // ladder is already in flight on the same host used to interleave state
  // silently; now the host-level guard fails fast, mirroring the
  // rolling-pass guard at cluster level.
  HostFixture fx(2);
  Supervisor first(*fx.host, fx.guest_ptrs(), {});
  bool done = false;
  first.run([&done](const SupervisorReport&) { done = true; });
  ASSERT_TRUE(fx.host->recovery_in_progress());
  ASSERT_TRUE(fx.host->up());  // the guard must trip, not the host check

  Supervisor second(*fx.host, fx.guest_ptrs(), {});
  EXPECT_THROW(second.run([](const SupervisorReport&) {}), InvariantViolation);
  EXPECT_THROW(second.recover([](const SupervisorReport&) {}),
               InvariantViolation);
  EXPECT_THROW(second.respond_to_failure(FaultKind::kVmmCrash,
                                         [](const SupervisorReport&) {}),
               InvariantViolation);

  // The rejected attempts must not have corrupted the in-flight ladder or
  // wedged the guard.
  run_until_flag(fx.sim, done, 2 * sim::kHour);
  EXPECT_TRUE(first.report().success);
  EXPECT_FALSE(fx.host->recovery_in_progress());
  Supervisor third(*fx.host, fx.guest_ptrs(), {});
  bool done_third = false;
  third.recover([&done_third](const SupervisorReport&) { done_third = true; });
  run_until_flag(fx.sim, done_third, 2 * sim::kHour);
  EXPECT_TRUE(third.report().success);
}

TEST(Supervisor, MigrationAbortLeavesVmRunningOnSource) {
  // Not a supervisor path, but the same failing world: a migration stream
  // that dies mid-pre-copy must leave the VM untouched on the source.
  sim::Simulation sim;
  vmm::Host src(sim, Calibration::paper_testbed(), 1);
  vmm::Host dst(sim, Calibration::paper_testbed(), 2);
  src.instant_start();
  dst.instant_start();
  auto vm = std::make_unique<guest::GuestOs>(src, "mig", sim::kGiB);
  vm->add_service(std::make_unique<guest::SshService>());
  bool up = false;
  vm->create_and_boot([&up] { up = true; });
  while (!up) sim.step();

  FaultConfig faults;
  faults.migration_abort_rate = 1.0;
  src.configure_faults(faults);

  cluster::VmMigrator migrator;
  cluster::VmMigrator::Result result;
  bool done = false;
  migrator.migrate(*vm, dst, [&](const cluster::VmMigrator::Result& r) {
    result = r;
    done = true;
  });
  while (!done && sim.pending_events() > 0) sim.step();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.destination_domain, kNoDomain);
  // The VM never left: still running on the source, state intact.
  EXPECT_EQ(&vm->host(), &src);
  EXPECT_EQ(vm->state(), guest::OsState::kRunning);
  EXPECT_TRUE(vm->integrity_ok());
  EXPECT_FALSE(src.background_transfer());
  EXPECT_FALSE(dst.background_transfer());
  EXPECT_EQ(src.faults().count(FaultKind::kMigrationAbort), std::uint64_t{1});
}

}  // namespace
}  // namespace rh::test
