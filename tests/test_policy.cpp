// Time-based rejuvenation policy: scheduling, rescheduling after cold
// reboots, mutual exclusion, heap-pressure trigger.
#include <gtest/gtest.h>

#include "rejuv/policy.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

/// Short intervals so tests run days, not weeks, of simulated time.
rejuv::RejuvenationPolicy::Config fast_config(rejuv::RebootKind kind) {
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.os_interval = 6 * sim::kHour;
  cfg.vmm_interval = 24 * sim::kHour;
  cfg.os_stagger = 20 * sim::kMinute;
  cfg.vmm_reboot_kind = kind;
  return cfg;
}

TEST(Policy, RunsOsAndVmmRejuvenationsOnSchedule) {
  HostFixture fx(2);
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(),
                                   fast_config(rejuv::RebootKind::kWarm));
  policy.start();
  fx.sim.run_for(25 * sim::kHour);
  // Each guest: OS rejuvenation at ~6, 12, 18, 24 h -> ~4 each; VMM at 24 h.
  EXPECT_EQ(policy.vmm_rejuvenations(), std::uint64_t{1});
  EXPECT_NEAR(static_cast<double>(policy.os_rejuvenations()), 8.0, 1.0);
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(Policy, WarmRebootDoesNotResetOsTimers) {
  HostFixture fx(1);
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(),
                                   fast_config(rejuv::RebootKind::kWarm));
  policy.start();
  fx.sim.run_for(30 * sim::kHour);
  // OS rejuvenations at 6, 12, 18, 24(ish, post-VMM retry), 30 h: >= 4.
  // The service generation counts OS reboots + initial boot.
  EXPECT_GE(policy.os_rejuvenations(), std::uint64_t{4});
  // Warm VMM rejuvenation did not restart services beyond the OS reboots.
  EXPECT_EQ(fx.guests[0]->find_service("sshd")->generation(),
            policy.os_rejuvenations() + 1);
}

TEST(Policy, ColdRebootResetsOsTimers) {
  HostFixture fx(1);
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(),
                                   fast_config(rejuv::RebootKind::kCold));
  policy.start();
  // Run to just after the VMM rejuvenation at 24 h.
  fx.sim.run_for(25 * sim::kHour);
  const auto os_count = policy.os_rejuvenations();
  EXPECT_EQ(policy.vmm_rejuvenations(), std::uint64_t{1});
  // The next OS rejuvenation comes a full interval after the cold reboot
  // (~30 h), not at the old phase.
  fx.sim.run_for(4 * sim::kHour);  // t = 29 h
  EXPECT_EQ(policy.os_rejuvenations(), os_count);
  fx.sim.run_for(2 * sim::kHour);  // t = 31 h > 24h-reboot + 6 h
  EXPECT_EQ(policy.os_rejuvenations(), os_count + 1);
}

TEST(Policy, HeapPressureTriggersEarlyVmmRejuvenation) {
  Calibration calib;
  calib.heap_leak_per_domain_cycle = 512 * sim::kKiB;  // aggressive aging
  HostFixture fx(1, calib);
  auto cfg = fast_config(rejuv::RebootKind::kWarm);
  cfg.os_interval = 2 * sim::kHour;  // frequent OS reboots leak heap fast
  cfg.vmm_interval = 10 * 24 * sim::kHour;  // timer alone would be too late
  cfg.heap_pressure_threshold = 0.5;
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(), cfg);
  policy.start();
  fx.sim.run_for(40 * sim::kHour);
  // 16 MiB heap, 0.5 MiB leaked per OS reboot (destroy+create): pressure
  // crosses 0.5 well within 40 h and the policy rejuvenates early.
  ASSERT_GE(policy.vmm_rejuvenations(), std::uint64_t{1});
  bool saw_heap_trigger = false;
  for (const auto& e : policy.events()) {
    saw_heap_trigger |= e.is_vmm && e.heap_triggered;
  }
  EXPECT_TRUE(saw_heap_trigger);
  // Rejuvenation rebuilt the heap: pressure is low again.
  EXPECT_LT(fx.host->vmm().heap().pressure(), 0.3);
}

TEST(Policy, BusyCollisionsBackOffExponentiallyAndAreRecorded) {
  // An OS timer that fires while the VMM rejuvenation is in flight defers
  // with capped exponential backoff. Against the same busy window, a
  // growing delay needs strictly fewer polls than the fixed cadence
  // (cap == delay degenerates to the historical fixed retry), and the
  // deferral count is recorded on the eventual event.
  auto total_os_deferrals = [](sim::Duration cap) {
    HostFixture fx(2);
    rejuv::RejuvenationPolicy::Config cfg;
    cfg.os_interval = 2 * sim::kHour;
    cfg.os_stagger = 0;  // both OS timers land inside the VMM window
    cfg.vmm_interval = 2 * sim::kHour - 30 * sim::kSecond;
    cfg.vmm_reboot_kind = rejuv::RebootKind::kWarm;
    cfg.retry_delay = 2 * sim::kSecond;
    cfg.retry_delay_cap = cap;
    rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(), cfg);
    policy.start();
    fx.sim.run_for(3 * sim::kHour);
    std::uint64_t deferrals = 0;
    bool saw_deferred_event = false;
    for (const auto& e : policy.events()) {
      if (!e.is_vmm && e.deferrals > 0) saw_deferred_event = true;
      if (!e.is_vmm) deferrals += e.deferrals;
    }
    EXPECT_TRUE(saw_deferred_event);
    return deferrals;
  };
  const auto fixed = total_os_deferrals(2 * sim::kSecond);
  const auto backoff = total_os_deferrals(5 * sim::kMinute);
  EXPECT_GT(fixed, std::uint64_t{0});
  EXPECT_GT(backoff, std::uint64_t{0});
  EXPECT_LT(backoff, fixed);
}

TEST(Policy, EventsRecordDurations) {
  HostFixture fx(1);
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(),
                                   fast_config(rejuv::RebootKind::kWarm));
  policy.start();
  fx.sim.run_for(25 * sim::kHour);
  ASSERT_FALSE(policy.events().empty());
  for (const auto& e : policy.events()) {
    EXPECT_GT(e.duration, 0);
    if (e.is_vmm) {
      EXPECT_NEAR(sim::to_seconds(e.duration), 53.0, 10.0);
    } else {
      EXPECT_NEAR(sim::to_seconds(e.duration), 17.0, 6.0);
    }
  }
}

}  // namespace
}  // namespace rh::test
