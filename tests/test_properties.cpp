// Property-style parameterized sweeps over the system's core invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mm/balloon.hpp"
#include "net/tcp.hpp"
#include "test_util.hpp"
#include "workload/prober.hpp"

namespace rh::test {
namespace {

// ---------------------------------------------------------------------
// Property 1: the warm-VM reboot preserves every byte of every VM image,
// for any number of VMs and any memory contents.
// ---------------------------------------------------------------------

class WarmPreservation : public ::testing::TestWithParam<int> {};

TEST_P(WarmPreservation, AllTokensSurvive) {
  const int vms = GetParam();
  HostFixture fx(vms);
  sim::Rng rng(static_cast<std::uint64_t>(vms) * 977 + 5);
  // Random tokens at random guest pages, tracked by (guest, pfn).
  std::vector<std::tuple<int, mm::Pfn, hw::ContentToken>> written;
  for (int v = 0; v < vms; ++v) {
    const DomainId id = fx.guests[static_cast<std::size_t>(v)]->domain_id();
    for (int k = 0; k < 64; ++k) {
      const auto pfn = static_cast<mm::Pfn>(rng.uniform_int(1, 262143));
      const auto tok = rng.next() | 1;
      fx.host->vmm().guest_write(id, pfn, tok);
      written.emplace_back(v, pfn, tok);
    }
  }
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  for (const auto& [v, pfn, tok] : written) {
    const DomainId id = fx.guests[static_cast<std::size_t>(v)]->domain_id();
    // Last write to a pfn wins; re-read and compare against a replay.
    (void)tok;
    ASSERT_NE(id, kNoDomain);
  }
  // Replay to compute each pfn's final expected token, then verify.
  std::map<std::pair<int, mm::Pfn>, hw::ContentToken> expected;
  for (const auto& [v, pfn, tok] : written) expected[{v, pfn}] = tok;
  for (const auto& [key, tok] : expected) {
    const DomainId id =
        fx.guests[static_cast<std::size_t>(key.first)]->domain_id();
    EXPECT_EQ(fx.host->vmm().guest_read(id, key.second), tok);
  }
}

INSTANTIATE_TEST_SUITE_P(VmCounts, WarmPreservation,
                         ::testing::Values(1, 2, 4, 7));

// ---------------------------------------------------------------------
// Property 2: frame-allocator conservation under random operations.
// ---------------------------------------------------------------------

class AllocatorChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorChaos, ConservationAndExclusivity) {
  sim::Rng rng(GetParam());
  constexpr std::int64_t kFrames = 4096;
  mm::FrameAllocator alloc(kFrames);
  std::map<DomainId, std::vector<hw::FrameNumber>> owned;
  DomainId next_id = 1;
  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.5) {
      const auto want = rng.uniform_int(1, 64);
      if (want <= alloc.free_frames()) {
        const DomainId id = next_id++;
        owned[id] = alloc.allocate(id, want);
      }
    } else if (roll < 0.8 && !owned.empty()) {
      auto it = owned.begin();
      std::advance(it, static_cast<long>(rng.index(owned.size())));
      alloc.release_all(it->first);
      owned.erase(it);
    } else if (!owned.empty()) {
      auto it = owned.begin();
      std::advance(it, static_cast<long>(rng.index(owned.size())));
      if (!it->second.empty()) {
        alloc.release(it->second.back());
        it->second.pop_back();
      }
    }
    // Invariants: conservation + exclusive ownership.
    std::int64_t owned_total = 0;
    for (const auto& [id, frames] : owned) {
      owned_total += static_cast<std::int64_t>(frames.size());
      ASSERT_EQ(alloc.owned_frames(id),
                static_cast<std::int64_t>(frames.size()));
    }
    ASSERT_EQ(alloc.free_frames() + owned_total, kFrames);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorChaos,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

// ---------------------------------------------------------------------
// Property 3: P2M stays a partial injection under balloon churn.
// ---------------------------------------------------------------------

class BalloonChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BalloonChaos, P2mStaysInjective) {
  sim::Rng rng(GetParam());
  mm::FrameAllocator alloc(8192);
  mm::P2mTable p2m(1024);
  const auto frames = alloc.allocate(1, 1024);
  for (mm::Pfn p = 0; p < 1024; ++p) p2m.add(p, frames[static_cast<std::size_t>(p)]);
  mm::BalloonDriver balloon(1, alloc, p2m);
  alloc.allocate(2, 2048);  // competing consumer

  for (int step = 0; step < 200; ++step) {
    if (rng.chance(0.5)) {
      balloon.inflate(rng.uniform_int(1, 200));
    } else {
      try {
        balloon.deflate(rng.uniform_int(1, 200));
      } catch (const mm::OutOfMachineMemory&) {
        // Legal under contention; the table must still be consistent.
      }
    }
    std::set<hw::FrameNumber> seen;
    for (mm::Pfn p = 0; p < p2m.pfn_count(); ++p) {
      const auto mfn = p2m.mfn_of(p);
      if (mfn == mm::kNoFrame) continue;
      ASSERT_TRUE(seen.insert(mfn).second) << "duplicate MFN mapping";
      ASSERT_EQ(alloc.owner_of(mfn), 1);
    }
    ASSERT_EQ(static_cast<std::int64_t>(seen.size()), p2m.populated());
    ASSERT_EQ(alloc.owned_frames(1), p2m.populated());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalloonChaos,
                         ::testing::Values(7u, 99u, 123456u));

// ---------------------------------------------------------------------
// Property 4: a TCP session survives an outage iff it ends before the
// client timeout -- swept across outage durations.
// ---------------------------------------------------------------------

struct TcpCase {
  int outage_s;
  int timeout_s;
  bool survives;
};

class TcpSurvival : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpSurvival, MatchesPrediction) {
  const TcpCase c = GetParam();
  sim::Simulation s;
  bool server_up = true;
  net::TcpConnection::Config cfg;
  cfg.client_timeout = static_cast<sim::Duration>(c.timeout_s) * sim::kSecond;
  net::TcpConnection conn(s, cfg, [&] {
    return server_up ? net::SegmentOutcome::kAck : net::SegmentOutcome::kDropped;
  });
  conn.open();
  s.run_until(5 * sim::kSecond);
  server_up = false;
  s.after(static_cast<sim::Duration>(c.outage_s) * sim::kSecond,
          [&] { server_up = true; });
  s.run_until(s.now() + 3 * sim::kMinute);
  EXPECT_EQ(conn.alive(), c.survives)
      << "outage " << c.outage_s << " s, timeout " << c.timeout_s << " s";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcpSurvival,
    ::testing::Values(TcpCase{10, 60, true},    // short outage
                      TcpCase{40, 60, true},    // warm-reboot scale
                      TcpCase{50, 60, true},    // just inside
                      TcpCase{70, 60, false},   // just outside
                      TcpCase{400, 60, false},  // saved-reboot scale
                      TcpCase{400, 0, true}));  // no client timeout

// ---------------------------------------------------------------------
// Property 5: downtime ordering warm < cold < saved holds at every VM
// count (the global shape of Fig. 6).
// ---------------------------------------------------------------------

class DowntimeOrdering : public ::testing::TestWithParam<int> {};

TEST_P(DowntimeOrdering, WarmBeatsColdBeatsSaved) {
  const int n = GetParam();
  auto downtime = [n](rejuv::RebootKind kind) {
    HostFixture fx(n);
    auto& g = *fx.guests[0];
    auto* ssh = g.find_service("sshd");
    workload::Prober prober(fx.sim, {},
                            [&] { return g.service_reachable(*ssh); });
    prober.start();
    fx.sim.run_for(sim::kSecond);
    const sim::SimTime start = fx.sim.now();
    fx.rejuvenate(kind);
    fx.sim.run_for(5 * sim::kSecond);
    prober.stop();
    return prober.outage_after(start).value_or(0);
  };
  const auto warm = downtime(rejuv::RebootKind::kWarm);
  const auto cold = downtime(rejuv::RebootKind::kCold);
  const auto saved = downtime(rejuv::RebootKind::kSaved);
  EXPECT_LT(warm, cold);
  EXPECT_LT(cold, saved);
  // Warm stays (near-)flat: always within a few seconds of the n=1 value.
  EXPECT_NEAR(sim::to_seconds(warm), 42.0, 4.0);
}

INSTANTIATE_TEST_SUITE_P(VmCounts, DowntimeOrdering, ::testing::Values(1, 3, 6));

// ---------------------------------------------------------------------
// Property 6: the paper's qualitative results are robust to calibration:
// scale the key device constants by +/-30 % and the ordering
// warm < cold < saved, the near-flatness of warm, and the positivity of
// r(n) all persist.
// ---------------------------------------------------------------------

class CalibrationRobustness : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationRobustness, OrderingSurvivesDeviceVariation) {
  const double scale = GetParam();
  Calibration calib;
  calib.machine.disk.sequential_read_bps *= scale;
  calib.machine.disk.sequential_write_bps *= scale;
  calib.xen_save_bps *= scale;
  calib.xen_restore_bps *= scale;
  calib.machine.bios.memory_check_per_gib = static_cast<sim::Duration>(
      calib.machine.bios.memory_check_per_gib * scale);
  calib.dom0_userland_boot =
      static_cast<sim::Duration>(calib.dom0_userland_boot * scale);
  calib.scrub_bps *= scale;

  auto downtime = [&calib](rejuv::RebootKind kind, int n) {
    HostFixture fx(n, calib);
    auto& g = *fx.guests[0];
    auto* ssh = g.find_service("sshd");
    workload::Prober prober(fx.sim, {},
                            [&] { return g.service_reachable(*ssh); });
    prober.start();
    fx.sim.run_for(sim::kSecond);
    const sim::SimTime start = fx.sim.now();
    fx.rejuvenate(kind);
    fx.sim.run_for(5 * sim::kSecond);
    return sim::to_seconds(prober.outage_after(start).value_or(0));
  };

  const double warm2 = downtime(rejuv::RebootKind::kWarm, 2);
  const double warm5 = downtime(rejuv::RebootKind::kWarm, 5);
  const double cold5 = downtime(rejuv::RebootKind::kCold, 5);
  const double saved5 = downtime(rejuv::RebootKind::kSaved, 5);
  // Ordering holds at every calibration point.
  EXPECT_LT(warm5, cold5);
  EXPECT_LT(cold5, saved5);
  // Warm stays near-flat in n.
  EXPECT_NEAR(warm5, warm2, 3.0);
  // r(n) stays positive.
  EXPECT_GT(cold5 - warm5, 10.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, CalibrationRobustness,
                         ::testing::Values(0.7, 1.0, 1.3));

// ---------------------------------------------------------------------
// Property 7: disk-backed save/restore round-trips arbitrary images.
// ---------------------------------------------------------------------

class SaveRestoreRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaveRestoreRoundTrip, RandomImagesSurviveTheDisk) {
  sim::Rng rng(GetParam());
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  auto& g = *fx.guests[0];
  std::map<mm::Pfn, hw::ContentToken> expected;
  for (int k = 0; k < 128; ++k) {
    const auto pfn = static_cast<mm::Pfn>(rng.uniform_int(1, 262143));
    const auto tok = rng.next() | 1;
    vmm.guest_write(g.domain_id(), pfn, tok);
    expected[pfn] = tok;
  }
  bool saved = false;
  vmm.save_domain_to_disk(g.domain_id(), fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);
  bool restored = false;
  DomainId nid = kNoDomain;
  vmm.restore_domain_from_disk("vm0", fx.host->images(), &g, [&](DomainId d) {
    nid = d;
    restored = true;
  });
  run_until_flag(fx.sim, restored);
  for (const auto& [pfn, tok] : expected) {
    ASSERT_EQ(vmm.guest_read(nid, pfn), tok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaveRestoreRoundTrip,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace rh::test
