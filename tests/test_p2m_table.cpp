#include <gtest/gtest.h>

#include "mm/p2m_table.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(P2mTable, AddRemoveRoundTrip) {
  mm::P2mTable t(10);
  EXPECT_EQ(t.pfn_count(), 10);
  EXPECT_EQ(t.populated(), 0);
  t.add(3, 1000);
  EXPECT_EQ(t.mfn_of(3), 1000);
  EXPECT_FALSE(t.is_hole(3));
  EXPECT_EQ(t.populated(), 1);
  EXPECT_EQ(t.remove(3), 1000);
  EXPECT_TRUE(t.is_hole(3));
  EXPECT_EQ(t.populated(), 0);
}

TEST(P2mTable, RejectsDoubleMapAndBadValues) {
  mm::P2mTable t(10);
  t.add(0, 5);
  EXPECT_THROW(t.add(0, 6), InvariantViolation);
  EXPECT_THROW(t.add(2, -1), InvariantViolation);
  EXPECT_THROW(t.remove(1), InvariantViolation);  // hole
  EXPECT_THROW((void)t.mfn_of(10), InvariantViolation);
  EXPECT_THROW((void)t.mfn_of(-1), InvariantViolation);
}

TEST(P2mTable, SizeMatchesPaperTwoMiBPerGiB) {
  // 1 GiB of pseudo-physical memory = 262144 pages at 8 bytes each.
  mm::P2mTable t(262144);
  EXPECT_EQ(t.size_bytes(), 2 * sim::kMiB);
}

TEST(P2mTable, MappedFramesInPfnOrder) {
  mm::P2mTable t(5);
  t.add(4, 40);
  t.add(1, 10);
  t.add(2, 20);
  EXPECT_EQ(t.mapped_frames(), (std::vector<hw::FrameNumber>{10, 20, 40}));
  EXPECT_EQ(t.first_populated_pfn(), 1);
}

TEST(P2mTable, GrowAddsHoles) {
  mm::P2mTable t(2);
  t.add(0, 7);
  t.grow(5);
  EXPECT_EQ(t.pfn_count(), 5);
  EXPECT_TRUE(t.is_hole(4));
  EXPECT_EQ(t.populated(), 1);
  EXPECT_THROW(t.grow(3), InvariantViolation);  // shrink forbidden
}

TEST(P2mTable, SerializeDeserializePreservesEverything) {
  mm::P2mTable t(8);
  t.add(0, 100);
  t.add(3, 300);
  t.add(7, 700);
  mm::ByteWriter w;
  t.serialize(w);
  const auto blob = w.take();
  mm::ByteReader r(blob);
  const auto t2 = mm::P2mTable::deserialize(r);
  EXPECT_EQ(t, t2);
  EXPECT_EQ(t2.populated(), 3);
  EXPECT_TRUE(t2.is_hole(1));
}

TEST(P2mTable, EmptyTableIsValid) {
  mm::P2mTable t;
  EXPECT_EQ(t.pfn_count(), 0);
  EXPECT_EQ(t.first_populated_pfn(), -1);
  EXPECT_TRUE(t.mapped_frames().empty());
}

}  // namespace
}  // namespace rh::test
