// Xen-style disk-backed save/restore (the saved-VM baseline).
#include <gtest/gtest.h>

#include "mm/balloon.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(SaveRestore, SaveWritesImageAndDestroysDomain) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  const DomainId id = fx.guests[0]->domain_id();
  const auto free_before = vmm.allocator().free_frames();

  bool saved = false;
  vmm.save_domain_to_disk(id, fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);

  EXPECT_EQ(vmm.find_domain(id), nullptr);  // destroyed after save
  EXPECT_EQ(vmm.allocator().free_frames(), free_before + 262144);
  const auto* img = fx.host->images().find("vm0");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->memory_size, sim::kGiB);
  EXPECT_EQ(img->pfn_count, 262144);
}

TEST(SaveRestore, SaveTimeScalesWithMemory) {
  auto save_time = [](sim::Bytes memory) {
    HostFixture fx(0);
    auto& g = fx.add_vm("big", memory);
    const sim::SimTime t0 = fx.sim.now();
    bool done = false;
    fx.host->vmm().save_domain_to_disk(g.domain_id(), fx.host->images(),
                                       [&] { done = true; });
    run_until_flag(fx.sim, done);
    return sim::to_seconds(fx.sim.now() - t0);
  };
  const double t1 = save_time(1 * sim::kGiB);
  const double t4 = save_time(4 * sim::kGiB);
  // Proportional to the image (75 MB/s effective, plus fixed prep).
  EXPECT_NEAR((t4 - t1), 3.0 * 1.074e9 / 75.0e6, 1.0);
}

TEST(SaveRestore, RestoreRebuildsContentExactly) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  auto& g = *fx.guests[0];
  const DomainId id = g.domain_id();
  // Recognisable guest memory contents.
  for (mm::Pfn pfn = 10; pfn < 20; ++pfn) {
    vmm.guest_write(id, pfn, 0x9000 + static_cast<hw::ContentToken>(pfn));
  }
  const auto exec_before = vmm.domain(id).exec();

  bool saved = false;
  vmm.save_domain_to_disk(id, fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);

  bool restored = false;
  DomainId new_id = kNoDomain;
  vmm.restore_domain_from_disk("vm0", fx.host->images(), &g, [&](DomainId nid) {
    new_id = nid;
    restored = true;
  });
  run_until_flag(fx.sim, restored);

  for (mm::Pfn pfn = 10; pfn < 20; ++pfn) {
    EXPECT_EQ(vmm.guest_read(new_id, pfn),
              0x9000 + static_cast<hw::ContentToken>(pfn));
  }
  EXPECT_EQ(vmm.domain(new_id).exec().cpu_context, exec_before.cpu_context);
  EXPECT_EQ(g.state(), guest::OsState::kRunning);
  EXPECT_TRUE(g.integrity_ok());
  // The image was consumed.
  EXPECT_EQ(fx.host->images().find("vm0"), nullptr);
}

TEST(SaveRestore, ImagesSurviveHardwareReset) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  bool saved = false;
  fx.host->vmm().save_domain_to_disk(g.domain_id(), fx.host->images(),
                                     [&] { saved = true; });
  run_until_flag(fx.sim, saved);

  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  bool up = false;
  fx.host->hardware_reboot([&] { up = true; });
  run_until_flag(fx.sim, up);

  // Disk contents (unlike RAM) survive the power cycle.
  ASSERT_NE(fx.host->images().find("vm0"), nullptr);
  bool restored = false;
  fx.host->vmm().restore_domain_from_disk("vm0", fx.host->images(), &g,
                                          [&](DomainId) { restored = true; });
  run_until_flag(fx.sim, restored);
  EXPECT_TRUE(g.integrity_ok());
  EXPECT_EQ(g.state(), guest::OsState::kRunning);
}

TEST(SaveRestore, ConcurrentSavesSerialiseOnDisk) {
  HostFixture fx(3);
  auto& vmm = fx.host->vmm();
  std::vector<sim::SimTime> completions;
  for (auto& g : fx.guests) {
    vmm.save_domain_to_disk(g->domain_id(), fx.host->images(),
                            [&] { completions.push_back(fx.sim.now()); });
  }
  while (completions.size() < 3 && fx.sim.pending_events() > 0) fx.sim.step();
  ASSERT_EQ(completions.size(), std::size_t{3});
  // Spaced by one full image write each (~19 s), not simultaneous.
  EXPECT_GT(completions[1] - completions[0], sim::from_seconds(15.0));
  EXPECT_GT(completions[2] - completions[1], sim::from_seconds(15.0));
}

TEST(SaveRestore, RestoreOfUnknownImageThrows) {
  HostFixture fx(1);
  EXPECT_THROW(fx.host->vmm().restore_domain_from_disk(
                   "ghost", fx.host->images(), fx.guests[0].get(),
                   [](DomainId) {}),
               InvariantViolation);
}

TEST(SaveRestore, BalloonedDomainRoundTripsShape) {
  HostFixture fx(1);
  auto& vmm = fx.host->vmm();
  auto& g = *fx.guests[0];
  const DomainId id = g.domain_id();
  // Balloon out 1000 pages before saving.
  mm::BalloonDriver balloon(id, vmm.allocator(), vmm.domain(id).p2m());
  balloon.inflate(1000);
  const auto populated_before = vmm.domain(id).p2m().populated();

  bool saved = false;
  vmm.save_domain_to_disk(id, fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);
  bool restored = false;
  DomainId nid = kNoDomain;
  vmm.restore_domain_from_disk("vm0", fx.host->images(), &g, [&](DomainId d) {
    nid = d;
    restored = true;
  });
  run_until_flag(fx.sim, restored);
  EXPECT_EQ(vmm.domain(nid).p2m().populated(), populated_before);
  EXPECT_EQ(vmm.allocator().owned_frames(nid), populated_before);
}

}  // namespace
}  // namespace rh::test
