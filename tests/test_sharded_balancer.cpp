// Sharded control plane + batched session store + wave scheduling
// (DESIGN.md §12): hash routing, shard-local round-robin determinism,
// federated failover when a shard empties, two-phase pressure spillover,
// SessionFleet downtime accounting, and the wave scheduler's
// signal-driven ordering / downtime-budget clamp.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/session_fleet.hpp"
#include "cluster/sharded_balancer.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(ShardedBalancer, HashRoutingIsUniformAndStable) {
  cluster::ShardedBalancer sb(4);
  std::vector<int> hits(4, 0);
  for (std::uint64_t k = 0; k < 10000; ++k) ++hits[sb.home_shard(k)];
  // Dense keys 0..M-1 must decorrelate through the splitmix64 finaliser:
  // every shard takes a fair share, not stripes of the key space.
  for (const int h : hits) EXPECT_GT(h, 2000);
  // The mapping is a pure function of (key, shard count).
  cluster::ShardedBalancer other(4);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(other.home_shard(k), sb.home_shard(k));
  }
}

// Sequential sharded cluster: hosts h belong to shard h % shards.
struct ShardedRig {
  static cluster::Cluster::Config config(int hosts, int shards, int vms) {
    cluster::Cluster::Config c;
    c.hosts = hosts;
    c.shards = shards;
    c.vms_per_host = vms;
    c.files_per_vm = 8;
    c.file_size = 64 * sim::kKiB;
    return c;
  }

  sim::Simulation sim;
  cluster::Cluster cl;

  explicit ShardedRig(int hosts, int shards, int vms = 1)
      : cl(sim, config(hosts, shards, vms)) {
    bool ready = false;
    cl.start([&ready] { ready = true; });
    while (!ready && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(ready);
  }

  cluster::ShardedBalancer& sb() { return *cl.sharded_balancer(); }

  std::uint64_t key_homed_to(std::size_t shard) {
    for (std::uint64_t k = 0;; ++k) {
      if (sb().home_shard(k) == shard) return k;
    }
  }

  std::uint64_t served_by_host(int h) {
    std::uint64_t n = 0;
    for (auto* g : cl.guests_of(h)) {
      n += static_cast<guest::ApacheService*>(g->find_service("httpd"))
               ->requests_served();
    }
    return n;
  }
};

TEST(ShardedBalancer, ShardLocalDispatchStaysOnOwnedBackends) {
  ShardedRig rig(2, 2, 2);  // shard 0 owns host 0's two VMs
  int served = 0;
  for (int i = 0; i < 5; ++i) {
    rig.sb().dispatch_on(0, /*key=*/i, [&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 5);
  EXPECT_EQ(rig.sb().shard_dispatched(0), std::uint64_t{5});
  EXPECT_EQ(rig.sb().dispatched(), std::uint64_t{5});
  EXPECT_EQ(rig.sb().federated(), std::uint64_t{0});
  // Shard 0 never touched host 1 (shard 1's backend).
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{5});
  EXPECT_EQ(rig.served_by_host(1), std::uint64_t{0});
}

TEST(ShardedBalancer, IdenticalRunsProduceIdenticalStateDigests) {
  auto run = [] {
    ShardedRig rig(2, 2, 2);
    for (int i = 0; i < 7; ++i) {
      rig.sb().dispatch(static_cast<std::uint64_t>(i), [](bool) {});
    }
    rig.sim.run_for(5 * sim::kSecond);
    return rig.sb().state_digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(ShardedBalancer, EmptiedShardFailsOverDeterministically) {
  ShardedRig rig(4, 2, 1);  // shard 0 owns hosts {0, 2}, shard 1 owns {1, 3}
  rig.sb().set_host_evicted(0, true);
  rig.sb().set_host_evicted(2, true);
  EXPECT_EQ(rig.sb().evicted_backends(), std::size_t{2});

  const std::uint64_t key = rig.key_homed_to(0);
  int served = 0;
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);

  EXPECT_EQ(served, 2);
  // Both requests spilled over the ring to shard 1, which walked its own
  // round-robin: host 1 first, host 3 second.
  EXPECT_EQ(rig.sb().federated(), std::uint64_t{2});
  EXPECT_EQ(rig.sb().shard_federated(1), std::uint64_t{2});
  EXPECT_EQ(rig.sb().shard_dispatched(1), std::uint64_t{2});
  EXPECT_EQ(rig.served_by_host(1), std::uint64_t{1});
  EXPECT_EQ(rig.served_by_host(3), std::uint64_t{1});
  EXPECT_EQ(rig.sb().rejected(), std::uint64_t{0});

  // Lifting the eviction restores home-shard service.
  rig.sb().set_host_evicted(0, false);
  rig.sb().set_host_evicted(2, false);
  EXPECT_EQ(rig.sb().evicted_backends(), std::size_t{0});
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 3);
  EXPECT_EQ(rig.sb().federated(), std::uint64_t{2});  // unchanged
}

TEST(ShardedBalancer, AllBackendsEvictedRejects) {
  ShardedRig rig(2, 2, 1);
  rig.sb().set_host_evicted(0, true);
  rig.sb().set_host_evicted(1, true);
  bool called = false, ok = true;
  rig.sb().dispatch(0, [&](bool served) {
    called = true;
    ok = served;
  });
  EXPECT_TRUE(called);  // sequential mode rejects inline
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.sb().rejected(), std::uint64_t{1});
  EXPECT_EQ(rig.sb().dispatched(), std::uint64_t{0});
}

TEST(ShardedBalancer, CrashEvictionRoutesAroundThenReadmits) {
  ShardedRig rig(4, 2, 1);  // shard 0 owns hosts {0, 2}
  rig.sb().set_host_crashed(0, true);
  EXPECT_EQ(rig.sb().crashed_backends(), std::size_t{1});
  // The broadcast reaches every shard's membership view, not just the
  // owner's: spillover targets must also know the backend is dead.
  EXPECT_EQ(rig.sb().shard_unplanned_down(0), std::uint32_t{1});
  EXPECT_EQ(rig.sb().shard_unplanned_down(1), std::uint32_t{1});

  const std::uint64_t key = rig.key_homed_to(0);
  int served = 0;
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  // The surviving home backend picks it up: no federation, no rejection.
  EXPECT_EQ(served, 1);
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{0});
  EXPECT_EQ(rig.served_by_host(2), std::uint64_t{1});
  EXPECT_EQ(rig.sb().federated(), std::uint64_t{0});

  // Recovery readmits; the broadcast counter saw both membership flips
  // (and a redundant re-broadcast is not a flip).
  rig.sb().set_host_crashed(0, false);
  rig.sb().set_host_crashed(0, false);
  EXPECT_EQ(rig.sb().crashed_backends(), std::size_t{0});
  EXPECT_EQ(rig.sb().shard_unplanned_down(0), std::uint32_t{0});
  EXPECT_EQ(rig.sb().crash_broadcasts(), std::uint64_t{2});
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{1});  // back in rotation
}

TEST(ShardedBalancer, CrashAndAdminEvictionAreIndependent) {
  ShardedRig rig(4, 2, 1);
  // Host 0 is both drained by the operator and crash-downed. The crash
  // recovery readmit must NOT cancel the admin drain.
  rig.sb().set_host_evicted(0, true);
  rig.sb().set_host_crashed(0, true);
  rig.sb().set_host_crashed(0, false);
  EXPECT_EQ(rig.sb().crashed_backends(), std::size_t{0});
  EXPECT_EQ(rig.sb().evicted_backends(), std::size_t{1});

  const std::uint64_t key = rig.key_homed_to(0);
  int served = 0;
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{0});  // still drained
  EXPECT_EQ(rig.served_by_host(2), std::uint64_t{1});

  // And the drain lifting alone restores service while a *new* crash
  // keeps the host out.
  rig.sb().set_host_evicted(0, false);
  rig.sb().set_host_crashed(0, true);
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{0});
  EXPECT_EQ(rig.served_by_host(2), std::uint64_t{2});
}

TEST(ShardedBalancer, PressuredHomeSpillsOverThenServesAsLastResort) {
  ShardedRig rig(2, 2, 1);  // shard s owns host s
  rig.sb().set_host_pressured(0, true);
  const std::uint64_t key = rig.key_homed_to(0);
  int served = 0;
  // First phase: the pressured home backend is skipped and the request
  // federates to the unpressured shard 1.
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(rig.sb().federated(), std::uint64_t{1});
  EXPECT_EQ(rig.served_by_host(1), std::uint64_t{1});
  // Second phase: everything pressured -- the second lap accepts the home
  // backend rather than failing the request.
  rig.sb().set_host_pressured(1, true);
  rig.sb().dispatch(key, [&](bool ok) { served += ok ? 1 : 0; });
  rig.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(rig.sb().rejected(), std::uint64_t{0});
  EXPECT_EQ(rig.served_by_host(0), std::uint64_t{1});
}

// ------------------------------------------------------- session fleet

TEST(SessionFleet, ClosedLoopReachesFullAvailabilityWithoutFaults) {
  ShardedRig rig(2, 2, 2);
  cluster::SessionFleet fleet(rig.sb(),
                              {.sessions = 16,
                               .think_base = 1 * sim::kSecond,
                               .think_spread = 1 * sim::kSecond,
                               .retry_interval = 500 * sim::kMillisecond,
                               .tick = 250 * sim::kMillisecond});
  fleet.start(rig.sim);
  rig.sim.run_for(3 * sim::kSecond);
  fleet.begin_window(rig.sim.now());
  rig.sim.run_for(10 * sim::kSecond);
  fleet.stop();
  const auto stats = fleet.stats(rig.sim.now());
  EXPECT_GT(stats.completions, std::uint64_t{0});
  EXPECT_EQ(stats.failures, std::uint64_t{0});
  EXPECT_EQ(stats.sessions_down_at_end, std::uint64_t{0});
  EXPECT_DOUBLE_EQ(stats.pooled_availability, 1.0);
  EXPECT_DOUBLE_EQ(stats.availability_p99, 1.0);
  EXPECT_DOUBLE_EQ(stats.availability_p999, 1.0);
  EXPECT_EQ(fleet.session_count(), std::uint64_t{16});
}

TEST(SessionFleet, OutageChargesPerSessionDowntimeIntoPercentiles) {
  ShardedRig rig(2, 2, 2);
  cluster::SessionFleet fleet(rig.sb(),
                              {.sessions = 16,
                               .think_base = 1 * sim::kSecond,
                               .think_spread = 1 * sim::kSecond,
                               .retry_interval = 500 * sim::kMillisecond,
                               .tick = 250 * sim::kMillisecond});
  fleet.start(rig.sim);
  rig.sim.run_for(3 * sim::kSecond);
  fleet.begin_window(rig.sim.now());

  // Total outage: every dispatch fails, sessions go down at their issue
  // time and stay down until service returns.
  rig.sb().set_host_evicted(0, true);
  rig.sb().set_host_evicted(1, true);
  rig.sim.run_for(5 * sim::kSecond);
  const auto mid = fleet.stats(rig.sim.now());
  EXPECT_GT(mid.failures, std::uint64_t{0});
  EXPECT_GT(mid.sessions_down_at_end, std::uint64_t{0});
  EXPECT_LT(mid.pooled_availability, 1.0);

  rig.sb().set_host_evicted(0, false);
  rig.sb().set_host_evicted(1, false);
  rig.sim.run_for(10 * sim::kSecond);
  fleet.stop();
  const auto stats = fleet.stats(rig.sim.now());
  EXPECT_GT(stats.completions, std::uint64_t{0});
  EXPECT_EQ(stats.sessions_down_at_end, std::uint64_t{0});  // all recovered
  // The outage shows up both pooled and in the per-session tail.
  EXPECT_LT(stats.pooled_availability, 1.0);
  EXPECT_LT(stats.availability_p99, 1.0);
  EXPECT_GT(stats.session_downtime.percentile(0.99), 0);
}

// ------------------------------------------------------ wave scheduling

TEST(ClusterWaves, OrderFollowsLoadSignalsWithIndexTieBreak) {
  ShardedRig rig(3, 3, 1);  // shard s owns host s
  // Only host 2 carries traffic, so it must be rejuvenated last; hosts 0
  // and 1 tie at zero load (and unlimited preserved headroom) and fall
  // back to index order.
  int served = 0;
  for (int i = 0; i < 6; ++i) {
    rig.sb().dispatch_on(2, /*key=*/i, [&](bool ok) { served += ok ? 1 : 0; });
  }
  rig.sim.run_for(5 * sim::kSecond);
  ASSERT_EQ(served, 6);

  bool done = false;
  cluster::Cluster::WaveReport report;
  rig.cl.rolling_rejuvenation_waves(
      {.wave_size = 1}, [&](const cluster::Cluster::WaveReport& r) {
        report = r;
        done = true;
      });
  while (!done) rig.sim.step();

  ASSERT_EQ(report.waves.size(), std::size_t{3});
  EXPECT_EQ(report.waves[0].hosts, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report.waves[1].hosts, (std::vector<std::size_t>{1}));
  EXPECT_EQ(report.waves[2].hosts, (std::vector<std::size_t>{2}));
  EXPECT_EQ(report.hosts_rejuvenated, std::size_t{3});
  for (const auto& w : report.waves) EXPECT_LT(w.started, w.finished);
  EXPECT_EQ(rig.cl.rejuvenation_durations().size(), std::size_t{3});
}

TEST(ClusterWaves, DowntimeBudgetClampsWaveSize) {
  ShardedRig rig(3, 1, 1);
  bool done = false;
  cluster::Cluster::WaveReport report;
  rig.cl.rolling_rejuvenation_waves(
      {.wave_size = 3, .max_concurrent_down = 2},
      [&](const cluster::Cluster::WaveReport& r) {
        report = r;
        done = true;
      });
  while (!done) rig.sim.step();
  // Never more than two hosts down at once: a wave of 2, then the rest.
  ASSERT_EQ(report.waves.size(), std::size_t{2});
  EXPECT_EQ(report.waves[0].hosts.size(), std::size_t{2});
  EXPECT_EQ(report.waves[1].hosts.size(), std::size_t{1});
  EXPECT_EQ(report.hosts_rejuvenated, std::size_t{3});
}

TEST(ClusterWaves, OverlappingPassesAreRejected) {
  ShardedRig rig(2, 1, 1);
  bool done = false;
  rig.cl.rolling_rejuvenation_waves(
      {.wave_size = 2}, [&done](const cluster::Cluster::WaveReport&) {
        done = true;
      });
  EXPECT_TRUE(rig.cl.rolling_in_progress());
  EXPECT_THROW(rig.cl.rolling_rejuvenation_waves({}, [](auto&) {}),
               InvariantViolation);
  EXPECT_THROW(rig.cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [] {}),
               InvariantViolation);
  while (!done) rig.sim.step();
  EXPECT_FALSE(rig.cl.rolling_in_progress());
  // The concurrent wave ran both hosts together (one wave, two durations).
  EXPECT_EQ(rig.cl.last_wave_report().waves.size(), std::size_t{1});
  EXPECT_EQ(rig.cl.rejuvenation_durations().size(), std::size_t{2});
}

TEST(ClusterWaves, SignalsMirrorIntoMetricsWhenObserved) {
  cluster::Cluster::Config cfg = ShardedRig::config(2, 1, 1);
  cfg.observe = true;
  sim::Simulation sim;
  cluster::Cluster cl(sim, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready && sim.pending_events() > 0) sim.step();
  ASSERT_TRUE(ready);

  bool done = false;
  cl.rolling_rejuvenation_waves(
      {.wave_size = 1}, [&done](const cluster::Cluster::WaveReport&) {
        done = true;
      });
  while (!done) sim.step();
  for (int h = 0; h < 2; ++h) {
    auto& metrics = cl.host(h).obs().metrics();
    bool saw_load = false, saw_headroom = false;
    for (const auto& g : metrics.gauges()) {
      saw_load = saw_load || g.name == "host.load";
      saw_headroom = saw_headroom || g.name == "host.preserved_headroom";
    }
    EXPECT_TRUE(saw_load);
    EXPECT_TRUE(saw_headroom);
  }
}

}  // namespace
}  // namespace rh::test
