#include <gtest/gtest.h>

#include "hw/machine_memory.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(MachineMemory, SizesRoundToFrames) {
  hw::MachineMemory m(1 * sim::kGiB + 100);
  EXPECT_EQ(m.frame_count(), 262144);
  EXPECT_EQ(m.size(), 1 * sim::kGiB);
}

TEST(MachineMemory, ReadWriteRoundTrip) {
  hw::MachineMemory m(sim::kMiB);
  m.write(3, 0xabcdef);
  EXPECT_EQ(m.read(3), 0xabcdefu);
  EXPECT_EQ(m.read(4), hw::kScrubbed);
}

TEST(MachineMemory, PopulatedFrameAccounting) {
  hw::MachineMemory m(sim::kMiB);
  EXPECT_EQ(m.populated_frames(), 0);
  m.write(0, 1);
  m.write(1, 2);
  EXPECT_EQ(m.populated_frames(), 2);
  m.write(0, 3);  // overwrite: still populated
  EXPECT_EQ(m.populated_frames(), 2);
  m.scrub(0);
  EXPECT_EQ(m.populated_frames(), 1);
  m.scrub(0);  // double-scrub is a no-op
  EXPECT_EQ(m.populated_frames(), 1);
}

TEST(MachineMemory, PowerCycleDestroysEverything) {
  hw::MachineMemory m(sim::kMiB);
  for (hw::FrameNumber f = 0; f < m.frame_count(); ++f) {
    m.write(f, static_cast<hw::ContentToken>(f + 1));
  }
  EXPECT_EQ(m.populated_frames(), m.frame_count());
  m.power_cycle();
  EXPECT_EQ(m.populated_frames(), 0);
  for (hw::FrameNumber f = 0; f < m.frame_count(); ++f) {
    EXPECT_EQ(m.read(f), hw::kScrubbed);
  }
  EXPECT_EQ(m.power_cycles(), std::uint64_t{1});
}

TEST(MachineMemory, OutOfRangeAccessThrows) {
  hw::MachineMemory m(sim::kMiB);
  EXPECT_THROW((void)m.read(-1), InvariantViolation);
  EXPECT_THROW((void)m.read(m.frame_count()), InvariantViolation);
  EXPECT_THROW(m.write(m.frame_count(), 1), InvariantViolation);
}

TEST(MachineMemory, RejectsSubFrameSize) {
  EXPECT_THROW(hw::MachineMemory(100), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
