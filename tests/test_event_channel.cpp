#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "vmm/event_channel.hpp"

namespace rh::test {
namespace {

TEST(EventChannel, AllocBindClose) {
  vmm::EventChannelTable t;
  const auto p = t.alloc_unbound(kDomain0);
  EXPECT_FALSE(t.is_bound(p));
  EXPECT_EQ(t.open_ports(), std::size_t{1});
  t.bind(p);
  EXPECT_TRUE(t.is_bound(p));
  EXPECT_EQ(t.bound_ports(), std::size_t{1});
  t.close(p);
  EXPECT_FALSE(t.is_bound(p));
  EXPECT_EQ(t.open_ports(), std::size_t{0});
}

TEST(EventChannel, ReusesClosedSlots) {
  vmm::EventChannelTable t;
  const auto p0 = t.alloc_unbound(kDomain0);
  const auto p1 = t.alloc_unbound(kDomain0);
  t.close(p0);
  const auto p2 = t.alloc_unbound(1);
  EXPECT_EQ(p2, p0);  // first closed slot reused
  EXPECT_NE(p2, p1);
}

TEST(EventChannel, InvalidOpsThrow) {
  vmm::EventChannelTable t;
  EXPECT_THROW(t.bind(0), InvariantViolation);
  EXPECT_THROW(t.close(5), InvariantViolation);
  const auto p = t.alloc_unbound(kDomain0);
  t.close(p);
  EXPECT_THROW(t.bind(p), InvariantViolation);  // closed slot
}

TEST(EventChannel, StateTokenTracksState) {
  vmm::EventChannelTable a, b;
  EXPECT_EQ(a.state_token(), b.state_token());
  const auto pa = a.alloc_unbound(kDomain0);
  EXPECT_NE(a.state_token(), b.state_token());
  const auto pb = b.alloc_unbound(kDomain0);
  EXPECT_EQ(a.state_token(), b.state_token());
  a.bind(pa);
  EXPECT_NE(a.state_token(), b.state_token());
  b.bind(pb);
  EXPECT_EQ(a.state_token(), b.state_token());
}

TEST(EventChannel, SerializeRoundTrip) {
  vmm::EventChannelTable t;
  const auto p0 = t.alloc_unbound(kDomain0);
  t.bind(p0);
  t.alloc_unbound(3);
  const auto p2 = t.alloc_unbound(4);
  t.close(p2);

  mm::ByteWriter w;
  t.serialize(w);
  const auto blob = w.take();
  mm::ByteReader r(blob);
  const auto t2 = vmm::EventChannelTable::deserialize(r);
  EXPECT_EQ(t, t2);
  EXPECT_EQ(t.state_token(), t2.state_token());
  EXPECT_EQ(t2.open_ports(), std::size_t{2});
  EXPECT_EQ(t2.bound_ports(), std::size_t{1});
}

}  // namespace
}  // namespace rh::test
