// TCP model unit tests: retransmission, backoff, timeouts, RST/FIN.
#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

using net::SegmentOutcome;
using net::TcpConnection;
using net::TcpState;

/// Scripted peer: controls the outcome per segment.
struct ScriptedPeer {
  SegmentOutcome outcome = SegmentOutcome::kAck;
  int segments = 0;

  SegmentOutcome operator()() {
    ++segments;
    return outcome;
  }
};

TEST(Tcp, StaysEstablishedUnderAcks) {
  sim::Simulation s;
  ScriptedPeer peer;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  s.run_until(10 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
  EXPECT_NEAR(static_cast<double>(conn.segments_sent()), 10.0, 1.0);
  EXPECT_EQ(conn.retransmissions(), std::uint64_t{0});
}

TEST(Tcp, RecoversAfterOutageAndRecordsIt) {
  sim::Simulation s;
  ScriptedPeer peer;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  s.run_until(2 * sim::kSecond);
  peer.outcome = SegmentOutcome::kDropped;
  s.run_until(12 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kRecovering);
  peer.outcome = SegmentOutcome::kAck;
  s.run_until(40 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
  // The outage lasted ~10-18 s (bounded by the retry backoff).
  EXPECT_GE(conn.longest_outage(), 9 * sim::kSecond);
  EXPECT_LE(conn.longest_outage(), 20 * sim::kSecond);
  EXPECT_GT(conn.retransmissions(), std::uint64_t{2});
}

TEST(Tcp, BackoffDoublesUpToCap) {
  sim::Simulation s;
  ScriptedPeer peer;
  peer.outcome = SegmentOutcome::kDropped;
  TcpConnection::Config cfg;
  cfg.rto_initial = sim::kSecond;
  cfg.rto_max = 4 * sim::kSecond;
  TcpConnection conn(s, cfg, [&] { return peer(); });
  conn.open();
  // Keepalive at 1 s, then retries at +1, +2, +4, +4, +4...
  s.run_until(17 * sim::kSecond);
  // 1 (first) + retries at 2, 4, 8, 12, 16 -> 6 segments.
  EXPECT_EQ(conn.segments_sent(), std::uint64_t{6});
  EXPECT_EQ(conn.retransmissions(), std::uint64_t{5});
}

TEST(Tcp, ClientTimeoutFires) {
  sim::Simulation s;
  ScriptedPeer peer;
  peer.outcome = SegmentOutcome::kDropped;
  TcpConnection::Config cfg;
  cfg.client_timeout = 10 * sim::kSecond;
  TcpConnection conn(s, cfg, [&] { return peer(); });
  conn.open();
  s.run_until(30 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kTimedOut);
  EXPECT_FALSE(conn.alive());
  // The timeout fired close to 10 s after the last ACK (t=0).
  EXPECT_LE(s.now(), 30 * sim::kSecond);
}

TEST(Tcp, NoTimeoutWhenOutageShorter) {
  sim::Simulation s;
  ScriptedPeer peer;
  TcpConnection::Config cfg;
  cfg.client_timeout = 60 * sim::kSecond;
  TcpConnection conn(s, cfg, [&] { return peer(); });
  conn.open();
  s.run_until(sim::kSecond + 1000);
  peer.outcome = SegmentOutcome::kDropped;
  s.after(30 * sim::kSecond, [&] { peer.outcome = SegmentOutcome::kAck; });
  s.run_until(2 * sim::kMinute);
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
}

TEST(Tcp, RstKillsConnection) {
  sim::Simulation s;
  ScriptedPeer peer;
  peer.outcome = SegmentOutcome::kRst;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  s.run_until(5 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kReset);
  const auto sent = conn.segments_sent();
  s.run_until(10 * sim::kSecond);
  EXPECT_EQ(conn.segments_sent(), sent);  // no activity after death
}

TEST(Tcp, FinClosesGracefully) {
  sim::Simulation s;
  ScriptedPeer peer;
  peer.outcome = SegmentOutcome::kFin;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  s.run_until(5 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kClosedByPeer);
}

TEST(Tcp, LocalCloseStopsKeepalives) {
  sim::Simulation s;
  ScriptedPeer peer;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  s.run_until(3 * sim::kSecond);
  conn.close();
  const auto sent = conn.segments_sent();
  s.run_until(10 * sim::kSecond);
  EXPECT_EQ(conn.state(), TcpState::kClosedLocal);
  EXPECT_EQ(conn.segments_sent(), sent);
}

TEST(Tcp, OpenTwiceThrows) {
  sim::Simulation s;
  ScriptedPeer peer;
  TcpConnection conn(s, {}, [&] { return peer(); });
  conn.open();
  EXPECT_THROW(conn.open(), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
