// Extension features beyond the paper's core evaluation:
//  - driver domains (Sec. 7: cannot be suspended; raise warm downtime)
//  - dom0-only restart (the paper's stated future work) + xenstored aging
//  - saved-VM related-work variants: compressed images, RAM-disk target
//  - load-aware (time-AND-load) rejuvenation policy
#include <gtest/gtest.h>

#include "rejuv/policy.hpp"
#include "test_util.hpp"
#include "workload/prober.hpp"

namespace rh::test {
namespace {

// ------------------------------------------------------ driver domains

TEST(DriverDomains, WarmRebootMustRebootThem) {
  HostFixture fx(2);
  fx.guests[1]->set_driver_domain(true);
  const auto gen0 = fx.guests[0]->find_service("sshd")->generation();
  const auto gen1 = fx.guests[1]->find_service("sshd")->generation();
  auto driver = fx.rejuvenate(rejuv::RebootKind::kWarm);
  // The normal guest kept its service; the driver domain was restarted.
  EXPECT_EQ(fx.guests[0]->find_service("sshd")->generation(), gen0);
  EXPECT_EQ(fx.guests[1]->find_service("sshd")->generation(), gen1 + 1);
  // The breakdown shows the extra steps.
  bool saw_shutdown = false, saw_boot = false;
  for (const auto& s : driver->breakdown()) {
    saw_shutdown |= s.label == "driver domain shutdown";
    saw_boot |= s.label == "driver domain boot";
  }
  EXPECT_TRUE(saw_shutdown);
  EXPECT_TRUE(saw_boot);
}

TEST(DriverDomains, TheirPresenceIncreasesWarmDowntime) {
  auto total_time = [](bool with_driver) {
    HostFixture fx(3);
    if (with_driver) fx.guests[2]->set_driver_domain(true);
    auto driver = fx.rejuvenate(rejuv::RebootKind::kWarm);
    return driver->total_duration();
  };
  const auto plain = total_time(false);
  const auto with_driver = total_time(true);
  // "the existence of driver domains increases the downtime" (Sec. 7).
  EXPECT_GT(with_driver, plain + 10 * sim::kSecond);
}

TEST(DriverDomains, DriverDomainServiceSeesColdStyleDowntime) {
  HostFixture fx(2);
  fx.guests[1]->set_driver_domain(true);
  auto* ssh0 = fx.guests[0]->find_service("sshd");
  auto* ssh1 = fx.guests[1]->find_service("sshd");
  workload::Prober p0(fx.sim, {},
                      [&] { return fx.guests[0]->service_reachable(*ssh0); });
  workload::Prober p1(fx.sim, {},
                      [&] { return fx.guests[1]->service_reachable(*ssh1); });
  p0.start();
  p1.start();
  fx.sim.run_for(sim::kSecond);
  const sim::SimTime start = fx.sim.now();
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  fx.sim.run_for(5 * sim::kSecond);
  const auto normal = p0.outage_after(start).value_or(0);
  const auto driver = p1.outage_after(start).value_or(0);
  EXPECT_GT(driver, normal + 10 * sim::kSecond);
}

TEST(DriverDomains, SavedRebootAlsoSkipsSuspendingThem) {
  HostFixture fx(2);
  fx.guests[1]->set_driver_domain(true);
  fx.rejuvenate(rejuv::RebootKind::kSaved);
  EXPECT_EQ(fx.guests[0]->find_service("sshd")->generation(), std::uint64_t{1});
  EXPECT_EQ(fx.guests[1]->find_service("sshd")->generation(), std::uint64_t{2});
  EXPECT_TRUE(fx.host->images().empty());  // only vm0's image, consumed
}

// ------------------------------------------------- dom0-only restart

TEST(Dom0Restart, GuestsSurviveWithMemoryIntact) {
  HostFixture fx(2);
  auto& vmm_before = fx.host->vmm();
  const auto generation = fx.host->vmm_generation();
  fx.host->vmm().guest_write(fx.guests[0]->domain_id(), 123, 0xbeef);
  bool up = false;
  fx.host->restart_dom0([&] { up = true; });
  run_until_flag(fx.sim, up);
  // Same VMM instance, same domains, same memory.
  EXPECT_EQ(fx.host->vmm_generation(), generation);
  EXPECT_EQ(&fx.host->vmm(), &vmm_before);
  EXPECT_EQ(fx.host->vmm().guest_read(fx.guests[0]->domain_id(), 123), 0xbeefu);
  for (auto& g : fx.guests) EXPECT_EQ(g->state(), guest::OsState::kRunning);
}

TEST(Dom0Restart, ServicesUnreachableOnlyWhileDom0IsDown) {
  HostFixture fx(1);
  auto* ssh = fx.guests[0]->find_service("sshd");
  workload::Prober prober(fx.sim, {}, [&] {
    return fx.guests[0]->service_reachable(*ssh);
  });
  prober.start();
  fx.sim.run_for(sim::kSecond);
  const sim::SimTime start = fx.sim.now();
  bool up = false;
  fx.host->restart_dom0([&] { up = true; });
  run_until_flag(fx.sim, up);
  fx.sim.run_for(2 * sim::kSecond);
  prober.stop();
  const auto outage = prober.outage_after(start);
  ASSERT_TRUE(outage.has_value());
  // The bridge forwards through dom0's shutdown, so only the userland boot
  // (31.5 s) is lost -- cheaper than even the warm full reboot when only
  // dom0 needs rejuvenation, and no domain is ever suspended.
  EXPECT_NEAR(sim::to_seconds(*outage), 31.5, 1.5);
}

TEST(Dom0Restart, RequiresHostUp) {
  HostFixture fx(0);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  EXPECT_THROW(fx.host->restart_dom0([] {}), InvariantViolation);
}

// ----------------------------------------------------- xenstored aging

TEST(XenstoredAging, LeakGrowsWithDomainOps) {
  Calibration calib;
  calib.xenstored_leak_per_domain_op = 64 * sim::kKiB;
  HostFixture fx(0, calib);
  const auto base = fx.host->xenstored_memory();
  // Base footprint plus dom0's own store entries.
  EXPECT_NEAR(static_cast<double>(base), 4.0 * sim::kMiB, 16.0 * sim::kKiB);
  for (int i = 0; i < 8; ++i) {
    const DomainId id =
        fx.host->vmm().create_domain_now("d", 16 * sim::kMiB, nullptr);
    fx.host->vmm().destroy_domain(id);
  }
  // 16 ops * 64 KiB = 1 MiB of leaked backlog (plus the one-off /stale
  // parent node); the domains' own entries were cleanly removed.
  EXPECT_NEAR(static_cast<double>(fx.host->xenstored_memory() - base),
              static_cast<double>(sim::kMiB), 1024.0);
  EXPECT_GT(fx.host->dom0_daemon_pressure(), 0.07);
  // The leak is visible as real store nodes.
  EXPECT_EQ(fx.host->xenstore().list("/stale").size(), std::size_t{16});
}

TEST(XenstoredAging, Dom0RestartResetsTheLeak) {
  Calibration calib;
  calib.xenstored_leak_per_domain_op = 256 * sim::kKiB;
  HostFixture fx(1, calib);
  for (int i = 0; i < 10; ++i) {
    const DomainId id =
        fx.host->vmm().create_domain_now("churn", 16 * sim::kMiB, nullptr);
    fx.host->vmm().destroy_domain(id);
  }
  const auto grown = fx.host->xenstored_memory();
  EXPECT_GT(grown, 8 * sim::kMiB);
  bool up = false;
  fx.host->restart_dom0([&] { up = true; });
  run_until_flag(fx.sim, up);
  // Fresh xenstored: backlog gone, only the live domains' entries remain
  // (repopulated from the hypervisor) -- and the guest never rebooted.
  EXPECT_NEAR(static_cast<double>(fx.host->xenstored_memory()),
              4.0 * sim::kMiB, 16.0 * sim::kKiB);
  EXPECT_TRUE(fx.host->xenstore().list("/stale").empty());
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kRunning);
  // vm0's entries are back in the repopulated store.
  const auto id = std::to_string(fx.guests[0]->domain_id());
  EXPECT_TRUE(fx.host->xenstore().exists("/local/domain/" + id + "/name"));
}

// ----------------------------------------------- saved-VM variants

double saved_downtime(Calibration calib, int vms = 2) {
  HostFixture fx(vms, calib);
  auto& g = *fx.guests[0];
  auto* ssh = g.find_service("sshd");
  workload::Prober prober(fx.sim, {},
                          [&] { return g.service_reachable(*ssh); });
  prober.start();
  fx.sim.run_for(sim::kSecond);
  const sim::SimTime start = fx.sim.now();
  fx.rejuvenate(rejuv::RebootKind::kSaved);
  fx.sim.run_for(5 * sim::kSecond);
  return sim::to_seconds(prober.outage_after(start).value_or(0));
}

TEST(SavedVariants, CompressionShrinksTheDiskTime) {
  Calibration plain;
  Calibration compressed;
  compressed.xen_save_compression_ratio = 0.45;
  const double t_plain = saved_downtime(plain);
  const double t_comp = saved_downtime(compressed);
  EXPECT_LT(t_comp, t_plain - 10.0);
  EXPECT_GT(t_comp, 60.0);  // still far from warm's ~40 s
}

TEST(SavedVariants, RamDiskBeatsRotatingDiskButNotWarm) {
  Calibration ramdisk;
  ramdisk.save_to_ram_disk = true;
  const double t_ram = saved_downtime(ramdisk);
  const double t_plain = saved_downtime(Calibration{});
  EXPECT_LT(t_ram, t_plain);
  // Warm downtime at n=2 is ~42 s; even the fast medium pays the copy and
  // the hardware reset, so it cannot come close.
  EXPECT_GT(t_ram, 80.0);
}

TEST(SavedVariants, RoundTripStillCorrect) {
  Calibration calib;
  calib.xen_save_compression_ratio = 0.45;
  calib.save_to_ram_disk = true;
  HostFixture fx(1, calib);
  const auto gen = fx.guests[0]->find_service("sshd")->generation();
  fx.rejuvenate(rejuv::RebootKind::kSaved);
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kRunning);
  EXPECT_EQ(fx.guests[0]->find_service("sshd")->generation(), gen);
}

// --------------------------------------------------- load-aware policy

TEST(LoadAwarePolicy, DefersUntilTrough) {
  HostFixture fx(1);
  double load = 0.9;
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.os_interval = sim::kWeek;  // keep OS rejuvenation out of the way
  cfg.vmm_interval = sim::kHour;
  cfg.retry_delay = 5 * sim::kMinute;
  cfg.load_probe = [&load] { return load; };
  cfg.load_defer_threshold = 0.5;
  cfg.max_load_defer = sim::kDay;
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(), cfg);
  policy.start();
  // Busy for 2 h past the due time: the policy keeps deferring.
  fx.sim.run_for(3 * sim::kHour);
  EXPECT_EQ(policy.vmm_rejuvenations(), std::uint64_t{0});
  EXPECT_GT(policy.load_deferrals(), std::uint64_t{5});
  // Load drops: the deferred rejuvenation fires at the next check.
  load = 0.1;
  fx.sim.run_for(30 * sim::kMinute);
  EXPECT_EQ(policy.vmm_rejuvenations(), std::uint64_t{1});
}

TEST(LoadAwarePolicy, MaxDeferBoundsStaleness) {
  HostFixture fx(1);
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.os_interval = sim::kWeek;
  cfg.vmm_interval = sim::kHour;
  cfg.retry_delay = 5 * sim::kMinute;
  cfg.load_probe = [] { return 1.0; };  // permanently busy
  cfg.load_defer_threshold = 0.5;
  cfg.max_load_defer = 2 * sim::kHour;
  rejuv::RejuvenationPolicy policy(*fx.host, fx.guest_ptrs(), cfg);
  policy.start();
  fx.sim.run_for(3 * sim::kHour + 30 * sim::kMinute);
  // Due at 1 h, deferred until 3 h, then forced.
  EXPECT_EQ(policy.vmm_rejuvenations(), std::uint64_t{1});
}

}  // namespace
}  // namespace rh::test
