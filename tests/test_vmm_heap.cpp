// The VMM heap and the aging model built on it.
#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "vmm/vmm_heap.hpp"

namespace rh::test {
namespace {

TEST(VmmHeap, AllocateFreeAccounting) {
  vmm::VmmHeap heap(16 * sim::kMiB);
  heap.allocate("a", sim::kMiB);
  heap.allocate("b", 2 * sim::kMiB);
  EXPECT_EQ(heap.used(), 3 * sim::kMiB);
  EXPECT_EQ(heap.available(), 13 * sim::kMiB);
  EXPECT_EQ(heap.allocated_under("a"), sim::kMiB);
  heap.free("a", sim::kMiB);
  EXPECT_EQ(heap.used(), 2 * sim::kMiB);
  EXPECT_EQ(heap.allocated_under("a"), 0);
}

TEST(VmmHeap, ExhaustionThrows) {
  vmm::VmmHeap heap(sim::kMiB);
  heap.allocate("x", sim::kMiB);
  EXPECT_THROW(heap.allocate("y", 1), vmm::VmmHeapExhausted);
}

TEST(VmmHeap, OverFreeDetected) {
  vmm::VmmHeap heap(sim::kMiB);
  heap.allocate("x", 100);
  EXPECT_THROW(heap.free("x", 200), InvariantViolation);
  EXPECT_THROW(heap.free("never", 1), InvariantViolation);
}

TEST(VmmHeap, LeaksAreUnreclaimable) {
  vmm::VmmHeap heap(sim::kMiB);
  heap.leak(256 * sim::kKiB);
  EXPECT_EQ(heap.leaked(), 256 * sim::kKiB);
  EXPECT_EQ(heap.available(), 768 * sim::kKiB);
  // There is no "unleak": only rebuilding the heap (rejuvenation) helps.
  heap.allocate("x", 768 * sim::kKiB);
  EXPECT_THROW(heap.allocate("y", 1), vmm::VmmHeapExhausted);
}

TEST(VmmHeap, LeakSaturatesAtAvailable) {
  vmm::VmmHeap heap(sim::kMiB);
  heap.allocate("x", 900 * sim::kKiB);
  heap.leak(10 * sim::kMiB);  // more than what's left
  EXPECT_EQ(heap.leaked(), 124 * sim::kKiB);
  EXPECT_EQ(heap.available(), 0);
}

TEST(VmmHeap, PressureReflectsUsage) {
  vmm::VmmHeap heap(sim::kMiB);
  EXPECT_DOUBLE_EQ(heap.pressure(), 0.0);
  heap.allocate("x", 512 * sim::kKiB);
  EXPECT_DOUBLE_EQ(heap.pressure(), 0.5);
  heap.leak(256 * sim::kKiB);
  EXPECT_DOUBLE_EQ(heap.pressure(), 0.75);
}

}  // namespace
}  // namespace rh::test
