// End-to-end live migration between two simulated hosts (Section 6).
#include <gtest/gtest.h>

#include "cluster/vm_migrator.hpp"
#include "test_util.hpp"
#include "workload/prober.hpp"

namespace rh::test {
namespace {

/// Two hosts, a VM with sshd on the first.
struct TwoHosts {
  sim::Simulation sim;
  vmm::Host src;
  vmm::Host dst;
  std::unique_ptr<guest::GuestOs> vm;

  explicit TwoHosts(sim::Bytes memory = sim::kGiB)
      : src(sim, Calibration::paper_testbed(), 1),
        dst(sim, Calibration::paper_testbed(), 2) {
    src.instant_start();
    dst.instant_start();
    vm = std::make_unique<guest::GuestOs>(src, "mig", memory);
    vm->add_service(std::make_unique<guest::SshService>());
    bool up = false;
    vm->create_and_boot([&up] { up = true; });
    while (!up) sim.step();
  }

  cluster::VmMigrator::Result run_migration(cluster::MigrationConfig cfg = {}) {
    cluster::VmMigrator migrator(cfg);
    cluster::VmMigrator::Result result;
    bool done = false;
    migrator.migrate(*vm, dst, [&](const cluster::VmMigrator::Result& r) {
      result = r;
      done = true;
    });
    EXPECT_TRUE(migrator.in_progress());
    while (!done && sim.pending_events() > 0) sim.step();
    EXPECT_TRUE(done);
    EXPECT_FALSE(migrator.in_progress());
    return result;
  }
};

TEST(VmMigration, MovesTheVmWithStateIntact) {
  TwoHosts rig;
  const DomainId old_id = rig.vm->domain_id();
  rig.src.vmm().guest_write(old_id, 77, 0xfacade);
  const auto exec_before = rig.src.vmm().domain(old_id).exec();
  const auto gen = rig.vm->find_service("sshd")->generation();

  const auto result = rig.run_migration();

  // The VM now lives on the destination...
  EXPECT_EQ(&rig.vm->host(), &rig.dst);
  EXPECT_EQ(rig.vm->state(), guest::OsState::kRunning);
  EXPECT_TRUE(rig.vm->integrity_ok());
  // ...with its memory and execution state intact...
  EXPECT_EQ(rig.dst.vmm().guest_read(result.destination_domain, 77), 0xfacadeu);
  EXPECT_EQ(rig.dst.vmm().domain(result.destination_domain).exec().cpu_context,
            exec_before.cpu_context);
  // ...its service never restarted...
  EXPECT_EQ(rig.vm->find_service("sshd")->generation(), gen);
  // ...and nothing of it remains on the source.
  EXPECT_EQ(rig.src.vmm().find_domain_by_name("mig"), nullptr);
  EXPECT_TRUE(rig.src.preserved().empty());
  EXPECT_EQ(rig.src.vmm().allocator().owned_frames(old_id), 0);
}

TEST(VmMigration, DowntimeIsOnlyStopAndCopy) {
  TwoHosts rig;
  auto* ssh = rig.vm->find_service("sshd");
  workload::Prober prober(rig.sim, {/*interval=*/10 * sim::kMillisecond},
                          [&] { return rig.vm->service_reachable(*ssh); });
  prober.start();
  rig.sim.run_for(sim::kSecond);
  const sim::SimTime start = rig.sim.now();
  const auto result = rig.run_migration();
  rig.sim.run_for(sim::kSecond);
  prober.stop();
  const auto outage = prober.outage_after(start);
  ASSERT_TRUE(outage.has_value());
  // "negligible service downtime" (Sec. 6): far below any reboot
  // technique; dominated by domain re-creation + resume handler.
  EXPECT_LT(*outage, 2 * sim::kSecond);
  EXPECT_NEAR(sim::to_seconds(*outage), sim::to_seconds(result.observed_downtime),
              0.1);
  // But the total migration took more than a minute for 1 GiB.
  EXPECT_GT(result.estimate.total, sim::kMinute);
}

TEST(VmMigration, TotalTimeMatchesAnalyticModel) {
  TwoHosts rig(800 * sim::kMiB);
  const auto analytic = cluster::estimate_migration(800 * sim::kMiB, {});
  const auto result = rig.run_migration();
  // ~72 s for 800 MB (the Clark et al. data point the paper cites).
  EXPECT_NEAR(sim::to_seconds(result.estimate.total),
              sim::to_seconds(analytic.total), 8.0);
  EXPECT_GT(result.estimate.bytes_transferred, 800 * sim::kMiB);
}

TEST(VmMigration, SourceHostDegradedDuringMigration) {
  TwoHosts rig;
  EXPECT_DOUBLE_EQ(rig.src.throughput_factor(), 1.0);
  cluster::VmMigrator migrator;
  bool done = false;
  migrator.migrate(*rig.vm, rig.dst,
                   [&](const cluster::VmMigrator::Result&) { done = true; });
  rig.sim.run_for(5 * sim::kSecond);
  ASSERT_FALSE(done);
  // 12 % loss on both ends while the transfer streams (Sec. 6).
  EXPECT_DOUBLE_EQ(rig.src.throughput_factor(), 0.88);
  EXPECT_DOUBLE_EQ(rig.dst.throughput_factor(), 0.88);
  while (!done && rig.sim.pending_events() > 0) rig.sim.step();
  EXPECT_DOUBLE_EQ(rig.src.throughput_factor(), 1.0);
}

TEST(VmMigration, FreesSourceForRejuvenation) {
  // The paper's migration-based rejuvenation: evacuate, reboot, return.
  TwoHosts rig;
  rig.run_migration();
  // The source host can now be rejuvenated with no VMs on it at all.
  bool loaded = false;
  rig.src.vmm().xexec_load([&] { loaded = true; });
  run_until_flag(rig.sim, loaded);
  bool down = false;
  rig.src.shutdown_dom0([&] { down = true; });
  run_until_flag(rig.sim, down);
  bool up = false;
  rig.src.quick_reload([&] { up = true; });
  run_until_flag(rig.sim, up);
  // The VM never noticed.
  EXPECT_EQ(rig.vm->state(), guest::OsState::kRunning);
  // And it can migrate back.
  cluster::VmMigrator back;
  bool returned = false;
  back.migrate(*rig.vm, rig.src,
               [&](const cluster::VmMigrator::Result&) { returned = true; });
  while (!returned && rig.sim.pending_events() > 0) rig.sim.step();
  EXPECT_TRUE(returned);
  EXPECT_EQ(&rig.vm->host(), &rig.src);
  EXPECT_TRUE(rig.vm->integrity_ok());
}

TEST(VmMigration, ValidatesPreconditions) {
  TwoHosts rig;
  cluster::VmMigrator migrator;
  // Same host.
  EXPECT_THROW(
      migrator.migrate(*rig.vm, rig.src, [](const cluster::VmMigrator::Result&) {}),
      InvariantViolation);
  // Destination too small for an 11 GiB VM plus what's there.
  TwoHosts big(11 * sim::kGiB);
  auto hog = std::make_unique<guest::GuestOs>(big.dst, "hog", 8 * sim::kGiB);
  hog->add_service(std::make_unique<guest::SshService>());
  bool up = false;
  hog->create_and_boot([&up] { up = true; });
  while (!up) big.sim.step();
  cluster::VmMigrator m2;
  EXPECT_THROW(
      m2.migrate(*big.vm, big.dst, [](const cluster::VmMigrator::Result&) {}),
      InvariantViolation);
}

}  // namespace
}  // namespace rh::test
