#include <gtest/gtest.h>

#include <sstream>

#include "simcore/trace.hpp"
#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(Tracer, RecordsAndQueries) {
  sim::Tracer t;
  t.emit(10, "vmm", "boot begin");
  t.emit(20, "guest", "kernel booting");
  t.emit(30, "vmm", "boot done");
  EXPECT_EQ(t.records().size(), std::size_t{3});
  EXPECT_EQ(t.by_category("vmm").size(), std::size_t{2});
  EXPECT_TRUE(t.contains("kernel"));
  EXPECT_FALSE(t.contains("panic"));
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, DisabledDropsRecords) {
  sim::Tracer t;
  t.set_enabled(false);
  t.emit(1, "x", "y");
  EXPECT_TRUE(t.records().empty());
  t.set_enabled(true);
  t.emit(2, "x", "y");
  EXPECT_EQ(t.records().size(), std::size_t{1});
}

TEST(Tracer, StreamsHumanReadableLines) {
  sim::Tracer t;
  std::ostringstream os;
  t.stream_to(&os);
  t.emit(1'500'000, "host", "dom0 down");
  EXPECT_EQ(os.str(), "[1.500s] host: dom0 down\n");
  t.stream_to(nullptr);
  t.emit(2'000'000, "host", "more");
  EXPECT_EQ(os.str(), "[1.500s] host: dom0 down\n");  // unchanged
}

TEST(Tracer, WarmRebootLeavesAnAuditTrail) {
  HostFixture fx(1);
  fx.rejuvenate(rejuv::RebootKind::kWarm);
  const auto& t = fx.host->tracer();
  EXPECT_TRUE(t.contains("suspended on-memory"));
  EXPECT_TRUE(t.contains("quick reload"));
  EXPECT_TRUE(t.contains("re-reserved"));
  EXPECT_TRUE(t.contains("resumed on-memory"));
  EXPECT_TRUE(t.contains("completed warm-VM reboot"));
  // No hardware reset appears anywhere in the trace.
  EXPECT_FALSE(t.contains("hardware reset"));
}

TEST(Tracer, ErrorPathLeakIsTraced) {
  Calibration calib;
  calib.heap_leak_per_error_path = 128 * sim::kKiB;
  HostFixture fx(0, calib);
  EXPECT_EQ(fx.host->vmm().trigger_error_path(), 128 * sim::kKiB);
  EXPECT_EQ(fx.host->vmm().heap().leaked(), 128 * sim::kKiB);
  EXPECT_TRUE(fx.host->tracer().contains("error path executed"));
  // Default calibration: error paths are clean.
  HostFixture clean(0);
  EXPECT_EQ(clean.host->vmm().trigger_error_path(), 0);
  EXPECT_EQ(clean.host->vmm().heap().leaked(), 0);
}

}  // namespace
}  // namespace rh::test
