#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/script.hpp"

namespace rh::test {
namespace {

TEST(Script, RunsStepsSequentiallyAndRecordsTiming) {
  sim::Simulation s;
  sim::Script script(s);
  std::vector<std::string> order;
  script.step("a", [&] {
    order.push_back("a");
    return sim::Duration{100};
  });
  script.pause("b", 50);
  script.step_async("c", [&](std::function<void()> done) {
    order.push_back("c");
    s.after(25, std::move(done));
  });
  bool completed = false;
  script.run([&] { completed = true; });
  s.run();
  ASSERT_TRUE(completed);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "c"}));
  ASSERT_EQ(script.records().size(), std::size_t{3});
  EXPECT_EQ(script.record("a").duration(), 100);
  EXPECT_EQ(script.record("b").duration(), 50);
  EXPECT_EQ(script.record("c").duration(), 25);
  EXPECT_EQ(script.record("b").start, script.record("a").end);
  EXPECT_EQ(script.total_duration(), 175);
}

TEST(Script, CompletionFiresAtLastStepEnd) {
  sim::Simulation s;
  sim::Script script(s);
  script.pause("only", 42);
  sim::SimTime done_at = -1;
  script.run([&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 42);
}

TEST(Script, RejectsEmptyAndMisuse) {
  sim::Simulation s;
  sim::Script script(s);
  EXPECT_THROW(script.run([] {}), InvariantViolation);  // no steps
  script.pause("x", 1);
  EXPECT_THROW((void)script.record("x"), InvariantViolation);  // not run yet
  EXPECT_THROW((void)script.total_duration(), InvariantViolation);
  EXPECT_THROW(script.pause("neg", -1), InvariantViolation);
}

TEST(Script, CannotAddStepsWhileRunning) {
  sim::Simulation s;
  sim::Script script(s);
  script.pause("x", 100);
  script.run([] {});
  EXPECT_TRUE(script.running());
  EXPECT_THROW(script.pause("y", 1), InvariantViolation);
  s.run();
  EXPECT_FALSE(script.running());
}

TEST(Script, NegativeStepDurationRejected) {
  sim::Simulation s;
  sim::Script script(s);
  script.step("bad", [] { return sim::Duration{-5}; });
  // The first step executes inline when the script starts.
  EXPECT_THROW(script.run([] {}), InvariantViolation);
}

TEST(Script, CanRerunAfterCompletion) {
  sim::Simulation s;
  sim::Script script(s);
  int runs = 0;
  script.step("count", [&] {
    ++runs;
    return sim::Duration{10};
  });
  script.run([] {});
  s.run();
  script.run([] {});
  s.run();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(script.records().size(), std::size_t{1});  // cleared per run
}

}  // namespace
}  // namespace rh::test
