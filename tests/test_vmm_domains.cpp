// VMM domain lifecycle, memory accounting and guest memory access.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(VmmDomains, BootBuildsDom0) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  EXPECT_TRUE(vmm.ready());
  auto& dom0 = vmm.domain(kDomain0);
  EXPECT_TRUE(dom0.privileged());
  EXPECT_EQ(dom0.name(), "Domain-0");
  EXPECT_EQ(dom0.memory_size(), 512 * sim::kMiB);
  EXPECT_TRUE(dom0.running());
  EXPECT_TRUE(vmm.unprivileged_domain_ids().empty());
}

TEST(VmmDomains, CreateAllocatesFramesAndHeap) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  const auto free_before = vmm.allocator().free_frames();
  const auto heap_before = vmm.heap().used();
  const DomainId id = vmm.create_domain_now("d", sim::kGiB, nullptr);
  EXPECT_EQ(vmm.allocator().free_frames(), free_before - 262144);
  EXPECT_EQ(vmm.allocator().owned_frames(id), 262144);
  EXPECT_EQ(vmm.heap().used() - heap_before, vmm::Vmm::kDomainHeapCost);
  EXPECT_EQ(vmm.domain(id).p2m().populated(), 262144);
}

TEST(VmmDomains, CreateThroughXendTakesTime) {
  HostFixture fx(0);
  const sim::SimTime t0 = fx.sim.now();
  DomainId id = kNoDomain;
  fx.host->vmm().create_domain("d", sim::kGiB, nullptr,
                               [&](DomainId got) { id = got; });
  fx.sim.run_for(sim::kSecond);
  EXPECT_NE(id, kNoDomain);
  // domain_create_base (310 ms) + 1 GiB * 30 ms.
  EXPECT_NEAR(sim::to_seconds(fx.host->vmm().xend().busy_until() - t0), 0.34, 0.01);
}

TEST(VmmDomains, DuplicateNameRejected) {
  HostFixture fx(0);
  fx.host->vmm().create_domain_now("dup", sim::kGiB, nullptr);
  EXPECT_THROW(fx.host->vmm().create_domain_now("dup", sim::kGiB, nullptr),
               InvariantViolation);
}

TEST(VmmDomains, DestroyReleasesEverything) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  const auto free_before = vmm.allocator().free_frames();
  const auto heap_before = vmm.heap().used();
  const DomainId id = vmm.create_domain_now("d", sim::kGiB, nullptr);
  vmm.destroy_domain(id);
  EXPECT_EQ(vmm.allocator().free_frames(), free_before);
  EXPECT_EQ(vmm.heap().used(), heap_before);
  EXPECT_EQ(vmm.find_domain(id), nullptr);
  EXPECT_THROW((void)vmm.domain(id), InvariantViolation);
}

TEST(VmmDomains, CannotDestroyDom0) {
  HostFixture fx(0);
  EXPECT_THROW(fx.host->vmm().destroy_domain(kDomain0), InvariantViolation);
}

TEST(VmmDomains, GuestMemoryGoesThroughP2m) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  const DomainId id = vmm.create_domain_now("d", 4 * sim::kMiB, nullptr);
  vmm.guest_write(id, 5, 0x1234);
  EXPECT_EQ(vmm.guest_read(id, 5), 0x1234u);
  // The write landed at the machine frame the P2M table maps.
  const auto mfn = vmm.domain(id).p2m().mfn_of(5);
  EXPECT_EQ(fx.host->machine().memory().read(mfn), 0x1234u);
  EXPECT_THROW((void)vmm.guest_read(id, 99999), InvariantViolation);
}

TEST(VmmDomains, FreshDomainMemoryIsScrubbed) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  // Pollute free memory.
  const DomainId a = vmm.create_domain_now("a", 4 * sim::kMiB, nullptr);
  for (mm::Pfn p = 0; p < 1024; ++p) vmm.guest_write(a, p, 0x77);
  vmm.destroy_domain(a);
  // The successor sees zeroed pages regardless of what 'a' wrote.
  const DomainId b = vmm.create_domain_now("b", 4 * sim::kMiB, nullptr);
  for (mm::Pfn p = 0; p < 1024; ++p) {
    ASSERT_EQ(vmm.guest_read(b, p), hw::kScrubbed);
  }
}

TEST(VmmDomains, ExecStateTokensAreUniquePerDomain) {
  HostFixture fx(0);
  auto& vmm = fx.host->vmm();
  const DomainId a = vmm.create_domain_now("a", 4 * sim::kMiB, nullptr);
  const DomainId b = vmm.create_domain_now("b", 4 * sim::kMiB, nullptr);
  EXPECT_NE(vmm.domain(a).exec().cpu_context, vmm.domain(b).exec().cpu_context);
  EXPECT_NE(vmm.domain(a).exec().shared_info, vmm.domain(b).exec().shared_info);
}

TEST(VmmDomains, UnprivilegedIdsSortedAndExcludeDom0) {
  HostFixture fx(3);
  const auto ids = fx.host->vmm().unprivileged_domain_ids();
  ASSERT_EQ(ids.size(), std::size_t{3});
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
  for (const auto id : ids) EXPECT_NE(id, kDomain0);
}

TEST(VmmDomains, DomainMemoryMustBePageMultiple) {
  HostFixture fx(0);
  EXPECT_THROW(fx.host->vmm().create_domain_now("odd", 4097, nullptr),
               InvariantViolation);
}

}  // namespace
}  // namespace rh::test
