#include <gtest/gtest.h>

#include "mm/serde.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(Serde, RoundTripsAllTypes) {
  mm::ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.str("hello, world");
  w.i64_vector({1, -1, 1000000});
  const auto blob = w.take();

  mm::ByteReader r(blob);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello, world");
  EXPECT_EQ(r.i64_vector(), (std::vector<std::int64_t>{1, -1, 1000000}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, EmptyStringAndVector) {
  mm::ByteWriter w;
  w.str("");
  w.i64_vector({});
  const auto blob = w.take();
  mm::ByteReader r(blob);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.i64_vector().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, TruncatedPayloadThrows) {
  mm::ByteWriter w;
  w.u64(7);
  auto blob = w.take();
  blob.pop_back();
  mm::ByteReader r(blob);
  EXPECT_THROW(r.u64(), InvariantViolation);
}

TEST(Serde, TruncatedStringLengthThrows) {
  mm::ByteWriter w;
  w.u32(100);  // declares a 100-char string with no body
  const auto blob = w.take();
  mm::ByteReader r(blob);
  EXPECT_THROW(r.str(), InvariantViolation);
}

TEST(Serde, LittleEndianLayout) {
  mm::ByteWriter w;
  w.u32(0x01020304);
  const auto blob = w.take();
  ASSERT_EQ(blob.size(), std::size_t{4});
  EXPECT_EQ(std::to_integer<int>(blob[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(blob[3]), 0x01);
}

}  // namespace
}  // namespace rh::test
