#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/histogram.hpp"
#include "simcore/random.hpp"

namespace rh::test {
namespace {

TEST(LatencyHistogram, BasicStats) {
  sim::LatencyHistogram h;
  EXPECT_EQ(h.count(), std::uint64_t{0});
  EXPECT_EQ(h.percentile(50), 0);
  for (const sim::Duration d : {100, 200, 300, 400, 500}) h.add(d);
  EXPECT_EQ(h.count(), std::uint64_t{5});
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 500);
  EXPECT_DOUBLE_EQ(h.mean(), 300.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketAccuracy) {
  sim::LatencyHistogram h;
  // 990 fast requests at 5 ms, 10 slow at 1 s.
  for (int i = 0; i < 990; ++i) h.add(5 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) h.add(sim::kSecond);
  const auto p50 = h.percentile(50);
  const auto p99_5 = h.percentile(99.5);
  // Log buckets: within ~±35 % of the true value.
  EXPECT_GE(p50, 4 * sim::kMillisecond);
  EXPECT_LE(p50, 8 * sim::kMillisecond);
  EXPECT_GE(p99_5, 700 * sim::kMillisecond);
  EXPECT_LE(p99_5, sim::kSecond);  // clamped at max
}

TEST(LatencyHistogram, PercentileMonotone) {
  sim::LatencyHistogram h;
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.add(rng.exponential_duration(20 * sim::kMillisecond));
  }
  sim::Duration prev = 0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const auto v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(h.percentile(100), h.max());
}

TEST(LatencyHistogram, ExponentialMeanRecovered) {
  sim::LatencyHistogram h;
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    h.add(rng.exponential_duration(10 * sim::kMillisecond));
  }
  EXPECT_NEAR(h.mean(), 10e3, 300.0);
  // p50 of an exponential is mean * ln 2 ~ 6.93 ms; bucket accuracy.
  EXPECT_GE(h.percentile(50), 5 * sim::kMillisecond);
  EXPECT_LE(h.percentile(50), 9 * sim::kMillisecond);
}

TEST(LatencyHistogram, MergeCombines) {
  sim::LatencyHistogram a, b;
  a.add(10);
  a.add(20);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), std::uint64_t{3});
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.mean(), (10 + 20 + 1000) / 3.0);
}

TEST(LatencyHistogram, MergeEmptyIsIdentity) {
  sim::LatencyHistogram a, empty;
  a.add(10 * sim::kMillisecond);
  a.add(20 * sim::kMillisecond);
  a.merge(empty);
  EXPECT_EQ(a.count(), std::uint64_t{2});
  EXPECT_DOUBLE_EQ(a.mean(), 15.0 * sim::kMillisecond);
  sim::LatencyHistogram b;
  b.merge(a);  // merging into an empty histogram copies
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.percentile(50), a.percentile(50));
  EXPECT_EQ(b.min(), a.min());
  EXPECT_EQ(b.max(), a.max());
}

TEST(LatencyHistogram, MergeSingleSample) {
  sim::LatencyHistogram a, b;
  b.add(5 * sim::kSecond);
  a.merge(b);
  EXPECT_EQ(a.count(), std::uint64_t{1});
  EXPECT_EQ(a.min(), 5 * sim::kSecond);
  EXPECT_EQ(a.max(), 5 * sim::kSecond);
}

TEST(LatencyHistogram, MergeIsAssociative) {
  // Bucket counts are integers, so merge associativity is exact: compare
  // (a+b)+c against a+(b+c) on count, moments and percentiles.
  sim::Rng rng(11);
  sim::LatencyHistogram a, b, c;
  for (int i = 0; i < 300; ++i) a.add(rng.exponential_duration(10 * sim::kMillisecond));
  for (int i = 0; i < 200; ++i) b.add(rng.exponential_duration(40 * sim::kMillisecond));
  for (int i = 0; i < 100; ++i) c.add(rng.exponential_duration(2 * sim::kSecond));
  sim::LatencyHistogram ab = a;
  ab.merge(b);
  ab.merge(c);
  sim::LatencyHistogram bc = b;
  bc.merge(c);
  sim::LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab.count(), a_bc.count());
  EXPECT_DOUBLE_EQ(ab.mean(), a_bc.mean());
  EXPECT_EQ(ab.min(), a_bc.min());
  EXPECT_EQ(ab.max(), a_bc.max());
  for (const int p : {10, 50, 90, 99}) {
    EXPECT_EQ(ab.percentile(p), a_bc.percentile(p));
  }
}

TEST(LatencyHistogram, ClearAndEdgeValues) {
  sim::LatencyHistogram h;
  h.add(0);  // clamps into the first bucket
  h.add(sim::kHour);
  EXPECT_EQ(h.count(), std::uint64_t{2});
  h.clear();
  EXPECT_EQ(h.count(), std::uint64_t{0});
  EXPECT_EQ(h.max(), 0);
  EXPECT_THROW(h.add(-1), InvariantViolation);
  EXPECT_THROW((void)h.percentile(101), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
