// The Section 3.2 analytic model with the paper's Section 5.6 constants.
#include <gtest/gtest.h>

#include "rejuv/downtime_model.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(DowntimeModel, PaperConstantsReproduceHeadlines) {
  const auto m = rejuv::DowntimeModel::paper();
  // d_w(11) ~ 42 s (the measured warm downtime at 11 VMs).
  EXPECT_NEAR(m.d_warm(11), 41.6, 1.0);
  // d_c grows with n through reboot_os.
  EXPECT_GT(m.d_cold(11, 0.5), m.d_cold(1, 0.5));
  // The paper's r(n) = 3.9 n + 60 - 17 alpha (rounded coefficients).
  const auto r_fn = m.reduction_fn(0.5);
  EXPECT_NEAR(r_fn.slope, 3.92, 0.05);
  EXPECT_NEAR(r_fn.intercept, 60.27 - 17.0 * 0.5, 1.0);
}

TEST(DowntimeModel, ReductionConsistency) {
  const auto m = rejuv::DowntimeModel::paper();
  for (int n = 1; n <= 11; ++n) {
    for (const double alpha : {0.1, 0.5, 1.0}) {
      EXPECT_NEAR(m.reduction(n, alpha), m.d_cold(n, alpha) - m.d_warm(n), 1e-9);
      EXPECT_NEAR(m.reduction_fn(alpha).at(n), m.reduction(n, alpha), 1e-9);
    }
  }
}

TEST(DowntimeModel, AlwaysPositiveUnderPaperConstants) {
  const auto m = rejuv::DowntimeModel::paper();
  EXPECT_TRUE(m.always_positive(11, 1.0));
  EXPECT_TRUE(m.always_positive(11, 0.001));
  EXPECT_TRUE(m.always_positive(100, 1.0));  // extrapolates safely
}

TEST(DowntimeModel, WarmCanLoseIfResumeWereSlow) {
  // Sanity: the model is not tautologically positive -- a hypothetical
  // resume as slow as a full OS boot flips the sign.
  auto m = rejuv::DowntimeModel::paper();
  m.resume = {60.0, 120.0};
  EXPECT_FALSE(m.always_positive(11, 0.5));
}

TEST(DowntimeModel, AlphaValidated) {
  const auto m = rejuv::DowntimeModel::paper();
  EXPECT_THROW((void)m.d_cold(5, 0.0), InvariantViolation);
  EXPECT_THROW((void)m.d_cold(5, 1.5), InvariantViolation);
}

TEST(DowntimeModel, AlphaOnlyAffectsColdPath) {
  const auto m = rejuv::DowntimeModel::paper();
  EXPECT_DOUBLE_EQ(m.d_warm(5), m.d_warm(5));
  EXPECT_GT(m.d_cold(5, 0.1), m.d_cold(5, 1.0));  // larger alpha saves more
  // Exactly reboot_os(1) of swing across the whole alpha range.
  EXPECT_NEAR(m.d_cold(5, 0.001) - m.d_cold(5, 1.0),
              m.reboot_os.at(1) * 0.999, 0.01);
}

TEST(LinearFn, FormatAndEval) {
  const rejuv::LinearFn f{3.9, 60.0};
  EXPECT_NEAR(f.at(10), 99.0, 1e-12);
  EXPECT_EQ(f.to_string(), "3.90n + 60.00");
}

}  // namespace
}  // namespace rh::test
