#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "simcore/check.hpp"
#include "simcore/inline_callback.hpp"

namespace rh::test {
namespace {

using sim::InlineCallback;

TEST(InlineCallback, DefaultConstructedIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
  EXPECT_THROW(cb(), InvariantViolation);
}

TEST(InlineCallback, NullFunctionPointerIsEmpty) {
  void (*fp)() = nullptr;
  InlineCallback cb(fp);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, EmptyStdFunctionConvertsToEmpty) {
  std::function<void()> f;
  InlineCallback cb(std::move(f));
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, InvokesWrappedCallable) {
  int calls = 0;
  InlineCallback cb([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallback, CapacityCapturesStayInline) {
  // A this-pointer plus a few ids/durations -- the typical closure
  // scheduled across src/ -- must not allocate.
  int sink = 0;
  std::array<std::int64_t, 5> payload{1, 2, 3, 4, 5};  // 40 bytes
  static_assert(sizeof(payload) + sizeof(&sink) <= InlineCallback::kInlineCapacity);
  InlineCallback cb([&sink, payload] { sink = static_cast<int>(payload[4]); });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(sink, 5);
}

TEST(InlineCallback, MovedInStdFunctionStaysInline) {
  // std::function<void()> is 32 bytes on the supported ABIs; wrapping one
  // (the orchestration layers' continuation currency) must not allocate a
  // second time at the scheduling boundary.
  int calls = 0;
  std::function<void()> f = [&calls] { ++calls; };
  InlineCallback cb(std::move(f));
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(calls, 1);
}

TEST(InlineCallback, OversizeCaptureFallsBackToHeap) {
  std::array<std::int64_t, 16> big{};  // 128 bytes > kInlineCapacity
  big[15] = 77;
  std::int64_t out = 0;
  InlineCallback cb([&out, big] { out = big[15]; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(out, 77);
}

TEST(InlineCallback, MoveOnlyCaptureSupported) {
  // std::function cannot hold this closure at all; InlineCallback must.
  auto owned = std::make_unique<int>(42);
  int out = 0;
  InlineCallback cb([&out, owned = std::move(owned)] { out = *owned; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(out, 42);
}

TEST(InlineCallback, MoveTransfersStateAndEmptiesSource) {
  int calls = 0;
  InlineCallback a([&calls] { ++calls; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InlineCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallback, MoveOfOversizeCallbackTransfersOwnership) {
  std::array<std::int64_t, 16> big{};
  big[0] = 9;
  std::int64_t out = 0;
  InlineCallback a([&out, big] { out = big[0]; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(b.is_inline());
  b();
  EXPECT_EQ(out, 9);
}

TEST(InlineCallback, ReassignmentDestroysPreviousTarget) {
  // The destructor of a replaced callable must run exactly once.
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> n;
    ~Probe() {
      if (n) ++*n;
    }
    Probe(std::shared_ptr<int> p) : n(std::move(p)) {}
    Probe(Probe&& o) noexcept = default;
    Probe(const Probe&) = delete;
    void operator()() {}
  };
  {
    InlineCallback cb{Probe{counter}};
    // Moved-from Probes hold a null shared_ptr, so only the final owner
    // counts; one live owner so far.
    EXPECT_EQ(*counter, 0);
    cb = InlineCallback{[] {}};
    EXPECT_EQ(*counter, 1);  // replaced target destroyed
  }
  EXPECT_EQ(*counter, 1);
}

TEST(InlineCallback, DestructorReleasesCapturedState) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb([token = std::move(token)] { (void)*token; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, ExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(InlineCallback), 64u);
}

}  // namespace
}  // namespace rh::test
