// VFS reads through the page cache: hit/miss accounting and timing.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

guest::Vfs::ReadResult read_file(HostFixture& fx, guest::GuestOs& g,
                                 std::int64_t file, double* seconds = nullptr) {
  guest::Vfs::ReadResult out;
  bool done = false;
  const sim::SimTime t0 = fx.sim.now();
  g.vfs().read(file, [&](const guest::Vfs::ReadResult& r) {
    out = r;
    done = true;
  });
  run_until_flag(fx.sim, done);
  if (seconds != nullptr) *seconds = sim::to_seconds(fx.sim.now() - t0);
  return out;
}

TEST(Vfs, FirstReadMissesSecondHits) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  const auto file = g.vfs().create_file("f", 64 * sim::kMiB);
  const auto first = read_file(fx, g, file);
  EXPECT_EQ(first.hit_blocks, 0);
  EXPECT_EQ(first.miss_blocks, 1024);  // 64 MiB / 64 KiB
  const auto second = read_file(fx, g, file);
  EXPECT_EQ(second.hit_blocks, 1024);
  EXPECT_EQ(second.miss_blocks, 0);
  EXPECT_TRUE(second.fully_cached());
}

TEST(Vfs, CachedReadsAreMuchFaster) {
  HostFixture fx(1, {}, 2 * sim::kGiB);
  auto& g = *fx.guests[0];
  const auto file = g.vfs().create_file("f", 512 * sim::kMiB);
  double cold_s = 0, warm_s = 0;
  read_file(fx, g, file, &cold_s);
  read_file(fx, g, file, &warm_s);
  // Disk ~88 MB/s vs memory ~1 GB/s: the ratio behind Fig. 8a's 91 %.
  EXPECT_GT(cold_s / warm_s, 8.0);
  EXPECT_LT(cold_s / warm_s, 14.0);
}

TEST(Vfs, WorkingSetLargerThanCacheKeepsMissing) {
  // VM with 1 GiB: cache ~0.85 GiB. A 2 GiB file can never fully fit.
  HostFixture fx(0);
  auto& g = fx.add_vm("small", sim::kGiB);
  const auto file = g.vfs().create_file("huge", 2 * sim::kGiB);
  read_file(fx, g, file);
  const auto again = read_file(fx, g, file);
  EXPECT_GT(again.miss_blocks, 0);
  EXPECT_EQ(again.hit_blocks + again.miss_blocks, 2 * 16384);
}

TEST(Vfs, PartialFinalBlockHandled) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  const auto file = g.vfs().create_file("odd", 100 * sim::kKiB);  // 1.56 blocks
  const auto r = read_file(fx, g, file);
  EXPECT_EQ(r.miss_blocks, 2);
  EXPECT_EQ(r.bytes, 100 * sim::kKiB);
}

TEST(Vfs, DistinctFilesDoNotShareBlocks) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  const auto a = g.vfs().create_file("a", sim::kMiB);
  const auto b = g.vfs().create_file("b", sim::kMiB);
  read_file(fx, g, a);
  const auto rb = read_file(fx, g, b);
  EXPECT_EQ(rb.hit_blocks, 0);  // b was never cached
}

TEST(Vfs, FileLookupValidation) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  EXPECT_THROW((void)g.vfs().file(0), InvariantViolation);
  EXPECT_THROW(g.vfs().create_file("empty", 0), InvariantViolation);
  const auto id = g.vfs().create_file("x", 10);
  EXPECT_EQ(g.vfs().file(id).name, "x");
}

}  // namespace
}  // namespace rh::test
