#include <gtest/gtest.h>

#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.push(10, [&] { fired = true; });
  q.push(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), std::size_t{1});
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  sim::EventQueue q;
  const auto id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(sim::kInvalidEventId));
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (const auto id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), std::size_t{0});
}

TEST(EventQueue, PopOnEmptyThrows) {
  sim::EventQueue q;
  EXPECT_THROW(q.pop(), InvariantViolation);
  EXPECT_THROW((void)q.next_time(), InvariantViolation);
}

TEST(EventQueue, EmptyCallbackRejected) {
  sim::EventQueue q;
  EXPECT_THROW(q.push(0, std::function<void()>{}), InvariantViolation);
}

TEST(EventQueue, ClearDropsEverything) {
  sim::EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(i, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  sim::EventQueue q;
  std::vector<sim::SimTime> popped;
  q.push(5, [] {});
  q.push(1, [] {});
  popped.push_back(q.pop().time);  // 1
  q.push(3, [] {});
  q.push(2, [] {});
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<sim::SimTime>{1, 2, 3, 5}));
}

}  // namespace
}  // namespace rh::test
