#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "determinism_workload.hpp"
#include "simcore/check.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/legacy_heap_queue.hpp"

namespace rh::test {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.push(10, [&] { fired = true; });
  q.push(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), std::size_t{1});
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  sim::EventQueue q;
  const auto id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(sim::kInvalidEventId));
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (const auto id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), std::size_t{0});
}

TEST(EventQueue, PopOnEmptyThrows) {
  sim::EventQueue q;
  EXPECT_THROW(q.pop(), InvariantViolation);
  EXPECT_THROW((void)q.next_time(), InvariantViolation);
}

TEST(EventQueue, EmptyCallbackRejected) {
  sim::EventQueue q;
  EXPECT_THROW(q.push(0, std::function<void()>{}), InvariantViolation);
}

TEST(EventQueue, ClearDropsEverything) {
  sim::EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(i, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  sim::EventQueue q;
  std::vector<sim::SimTime> popped;
  q.push(5, [] {});
  q.push(1, [] {});
  popped.push_back(q.pop().time);  // 1
  q.push(3, [] {});
  q.push(2, [] {});
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<sim::SimTime>{1, 2, 3, 5}));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  // The generation tag makes a fired event's id stale: cancelling it is a
  // detected no-op instead of silently poisoning queue bookkeeping.
  sim::EventQueue q;
  const auto id = q.push(10, [] {});
  bool other_fired = false;
  q.push(20, [&] { other_fired = true; });
  const auto popped = q.pop();
  EXPECT_EQ(popped.id, id);
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), std::size_t{1});
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(other_fired);
}

TEST(EventQueue, IdReuseAcrossGenerations) {
  sim::EventQueue q;
  const auto first = q.push(10, [] {});
  ASSERT_TRUE(q.cancel(first));
  // The freed slot is recycled for the next event, but with a bumped
  // generation: the new id differs and the old id cannot touch it.
  bool fired = false;
  const auto second = q.push(11, [&] { fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), std::size_t{1});
  q.pop().fn();
  EXPECT_TRUE(fired);
  // Fired handle of the reused slot is stale too.
  EXPECT_FALSE(q.cancel(second));
}

TEST(EventQueue, ClearStalesOutstandingIds) {
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  q.clear();
  for (const auto id : ids) EXPECT_FALSE(q.cancel(id));
  // The queue remains fully usable after clear().
  q.push(3, [] {});
  EXPECT_EQ(q.size(), std::size_t{1});
  EXPECT_EQ(q.pop().time, 3);
}

TEST(EventQueue, MoveOnlyCallbacksSupported) {
  sim::EventQueue q;
  auto owned = std::make_unique<int>(7);
  int out = 0;
  q.push(1, [&out, owned = std::move(owned)] { out = *owned; });
  q.pop().fn();
  EXPECT_EQ(out, 7);
}

TEST(EventQueue, ManyEventsAcrossMixedHorizonsStaySorted) {
  // Enough events to force several calendar resizes, with microsecond and
  // week-scale horizons mixed (the pattern the simulator actually produces).
  sim::EventQueue q;
  sim::Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.next();
    const sim::SimTime t = (r % 4 == 0)
                               ? static_cast<sim::SimTime>(sim::kWeek + (r >> 8) % sim::kDay)
                               : static_cast<sim::SimTime>((r >> 8) % 100000);
    q.push(t, [] {});
  }
  sim::SimTime prev = -1;
  while (!q.empty()) {
    const auto t = q.pop().time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// --- Determinism regression -------------------------------------------------
//
// The golden constant below is the event-order hash the ORIGINAL binary-heap
// EventQueue produced on the mixed workload (pushes across three horizons,
// same-time bursts, cancellations, interleaved drains) before the calendar
// queue replaced it. The calendar queue must reproduce the exact same firing
// order -- same-time FIFO included -- so every figure/table binary keeps
// emitting bit-identical results.
constexpr std::uint64_t kGoldenOrderHash = 0x0a2ae001a6818e75ULL;

TEST(EventQueueDeterminism, MatchesGoldenOrderHash) {
  sim::EventQueue q;
  EXPECT_EQ(determinism_workload_hash(q), kGoldenOrderHash);
}

TEST(EventQueueDeterminism, MatchesLegacyHeapQueueLive) {
  // Belt and braces: also diff against the preserved legacy implementation
  // executed right now, so a platform where the golden constant would ever
  // diverge (it must not -- the workload is integer-only) is caught as a
  // cross-implementation mismatch rather than a stale constant.
  sim::EventQueue calendar;
  sim::LegacyHeapQueue heap;
  EXPECT_EQ(determinism_workload_hash(calendar), determinism_workload_hash(heap));
}

}  // namespace
}  // namespace rh::test
