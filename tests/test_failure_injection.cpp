// Failure injection around the reboot window: what survives what.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "rejuv/supervisor.hpp"
#include "test_util.hpp"
#include "workload/http_client.hpp"

namespace rh::test {
namespace {

TEST(FailureInjection, PowerLossAfterSuspendLosesImagesNotDisk) {
  // The operator suspends everything for a warm reboot, but the machine
  // loses power before the quick reload. The in-memory images are gone;
  // anything saved to disk earlier is not.
  HostFixture fx(2);
  // vm1's image goes to disk first (the admin hedged).
  bool saved = false;
  fx.host->vmm().save_domain_to_disk(fx.guests[1]->domain_id(),
                                     fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);

  // Power loss instead of quick reload.
  bool up = false;
  fx.host->hardware_reboot([&] { up = true; });
  run_until_flag(fx.sim, up);

  // vm0's frozen image is unrecoverable; resume must fail loudly.
  EXPECT_TRUE(fx.host->preserved().empty());
  EXPECT_THROW(fx.host->vmm().resume_domain_on_memory(
                   "vm0", fx.guests[0].get(), [](DomainId) {}),
               InvariantViolation);
  // vm1 restores from its disk image; vm0 can only cold-boot.
  bool restored = false;
  fx.host->vmm().restore_domain_from_disk("vm1", fx.host->images(),
                                          fx.guests[1].get(),
                                          [&](DomainId) { restored = true; });
  run_until_flag(fx.sim, restored);
  EXPECT_TRUE(fx.guests[1]->integrity_ok());
  EXPECT_EQ(fx.guests[1]->state(), guest::OsState::kRunning);
  // vm0's object still believes it is suspended -- its image is simply
  // gone. Recovery means provisioning a fresh VM.
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kSuspended);
}

TEST(FailureInjection, SuspendedStateSurvivesMultipleQuickReloads) {
  // Preserved regions must survive not just one reload but any number of
  // them before the resume happens (e.g. the first new VMM was also bad
  // and was itself rejuvenated).
  HostFixture fx(1);
  auto cycle = [&fx] {
    bool loaded = false;
    fx.host->vmm().xexec_load([&] { loaded = true; });
    run_until_flag(fx.sim, loaded);
    if (fx.host->dom0_state() == vmm::Dom0State::kRunning) {
      bool down = false;
      fx.host->shutdown_dom0([&] { down = true; });
      run_until_flag(fx.sim, down);
    }
    bool up = false;
    fx.host->quick_reload([&] { up = true; });
    run_until_flag(fx.sim, up);
  };
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  bool loaded0 = false;
  fx.host->vmm().xexec_load([&] { loaded0 = true; });
  run_until_flag(fx.sim, loaded0);
  bool down0 = false;
  fx.host->shutdown_dom0([&] { down0 = true; });
  run_until_flag(fx.sim, down0);
  bool up0 = false;
  fx.host->quick_reload([&] { up0 = true; });
  run_until_flag(fx.sim, up0);

  cycle();  // a second reload before anyone resumed

  ASSERT_EQ(fx.host->preserved().size(), std::size_t{1});
  bool resumed = false;
  fx.host->vmm().resume_domain_on_memory("vm0", fx.guests[0].get(),
                                         [&](DomainId) { resumed = true; });
  run_until_flag(fx.sim, resumed);
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kRunning);
}

TEST(FailureInjection, TamperedPreservedPayloadIsRejected) {
  HostFixture fx(1);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  // Truncate the serialised record (bit-rot / buggy writer).
  const auto* region = fx.host->preserved().find("domain/vm0");
  ASSERT_NE(region, nullptr);
  mm::PreservedRegion corrupted = *region;
  corrupted.payload.resize(corrupted.payload.size() / 2);
  fx.host->preserved().replace(std::move(corrupted));

  // The record is parsed when the (xend-serialised) resume executes.
  bool resumed = false;
  fx.host->vmm().resume_domain_on_memory("vm0", fx.guests[0].get(),
                                         [&](DomainId) { resumed = true; });
  EXPECT_THROW(
      {
        while (!resumed && fx.sim.pending_events() > 0) fx.sim.step();
      },
      InvariantViolation);
  EXPECT_FALSE(resumed);
}

TEST(FailureInjection, WarmRebootUnderActiveWorkloadIsClean) {
  // Requests in flight when the suspend lands must not corrupt anything;
  // the fleet stalls and resumes.
  HostFixture fx(0);
  auto web = std::make_unique<guest::GuestOs>(*fx.host, "web", sim::kGiB);
  auto& apache = static_cast<guest::ApacheService&>(
      web->add_service(std::make_unique<guest::ApacheService>()));
  std::vector<std::int64_t> files;
  for (int f = 0; f < 30; ++f) {
    files.push_back(web->vfs().create_file("f" + std::to_string(f),
                                           512 * sim::kKiB));
  }
  guest::GuestOs* web_ptr = web.get();
  fx.guests.push_back(std::move(web));
  bool booted = false;
  web_ptr->create_and_boot([&] { booted = true; });
  run_until_flag(fx.sim, booted);

  workload::HttpClientFleet fleet(*web_ptr, apache, files, {});
  fleet.start();
  fx.sim.run_for(5 * sim::kSecond);
  const auto ok_before = fleet.requests_ok();

  fx.rejuvenate(rejuv::RebootKind::kWarm);
  fx.sim.run_for(40 * sim::kSecond);
  fleet.stop();

  EXPECT_TRUE(web_ptr->integrity_ok());
  EXPECT_GT(fleet.requests_ok(), ok_before + 500);  // flow resumed
  // All cached content survived: no stale-token evictions.
  EXPECT_EQ(web_ptr->cache().stale_hits(), std::uint64_t{0});
}

TEST(FailureInjection, ResumeOfWrongGuestObjectStillChecksIntegrity) {
  // An operator resumes a preserved image into a *different* GuestOs
  // object (wrong hooks wiring). The signature check catches it.
  HostFixture fx(1);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  auto impostor =
      std::make_unique<guest::GuestOs>(*fx.host, "impostor", sim::kGiB);
  // Force the impostor into a suspended-looking state via its own boot +
  // suspend is impossible (it has no domain); instead verify the API
  // rejects a non-suspended hooks object cleanly.
  bool resumed = false;
  EXPECT_THROW(
      {
        fx.host->vmm().resume_domain_on_memory("vm0", impostor.get(),
                                               [&](DomainId) { resumed = true; });
        while (!resumed && fx.sim.pending_events() > 0) fx.sim.step();
      },
      InvariantViolation);
}

// --------------------------------------------- the supervised ladder

/// Runs a supervised warm pass over the fixture; returns the report.
rejuv::SupervisorReport supervised_pass(HostFixture& fx,
                                        rejuv::SupervisorConfig cfg = {}) {
  rejuv::Supervisor sup(*fx.host, fx.guest_ptrs(), cfg);
  bool done = false;
  sup.run([&done](const rejuv::SupervisorReport&) { done = true; });
  const sim::SimTime deadline = fx.sim.now() + 12 * sim::kHour;
  while (!done && fx.sim.pending_events() > 0 && fx.sim.now() < deadline) {
    fx.sim.step();
  }
  EXPECT_TRUE(done) << "supervised pass did not complete";
  return sup.report();
}

TEST(FailureInjection, LadderWarmFallsBackToSavedAfterXexecFailure) {
  HostFixture fx(2);
  fault::FaultConfig faults;
  faults.xexec_failure_rate = 1.0;
  fx.host->configure_faults(faults);
  const auto report = supervised_pass(fx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kSaved);
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kFallbackToSaved),
            std::size_t{1});
  // The fallback preserved every VM's state via the disk path.
  EXPECT_EQ(report.restored_vms, std::size_t{2});
  for (auto& g : fx.guests) EXPECT_TRUE(g->integrity_ok());
}

TEST(FailureInjection, LadderSavedFallsBackToColdAfterDiskWriteError) {
  HostFixture fx(2);
  fault::FaultConfig faults;
  faults.disk_write_error_rate = 1.0;
  fx.host->configure_faults(faults);
  rejuv::SupervisorConfig cfg;
  cfg.preferred = rejuv::RebootKind::kSaved;
  const auto report = supervised_pass(fx, cfg);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.recovery_count(rejuv::RecoveryAction::kFallbackToCold),
            std::size_t{2});
  EXPECT_EQ(report.cold_booted_vms, std::size_t{2});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
  }
}

TEST(FailureInjection, CorruptImageColdBootsThatVmWhileSiblingsResume) {
  // A partial corruption rate: with the fixture's fixed seed, some images
  // rot and some survive. The checksum catches the rotten ones, which
  // cold boot; every sibling still gets its fast on-memory resume, and
  // every VM ends up running.
  HostFixture fx(4);
  fault::FaultConfig faults;
  faults.image_corruption_rate = 0.5;
  fx.host->configure_faults(faults);
  const auto report = supervised_pass(fx);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.completed, rejuv::RebootKind::kWarm);
  const auto corrupted =
      report.recovery_count(rejuv::RecoveryAction::kColdBootSingleVm);
  EXPECT_EQ(report.cold_booted_vms, corrupted);
  EXPECT_EQ(report.resumed_vms + corrupted, std::size_t{4});
  // Seed 42 must actually split the herd, or this test shows nothing.
  EXPECT_GE(corrupted, std::size_t{1});
  EXPECT_GE(report.resumed_vms, std::size_t{1});
  for (auto& g : fx.guests) {
    EXPECT_EQ(g->state(), guest::OsState::kRunning);
    EXPECT_TRUE(g->integrity_ok());
  }
}

// -------------------------------------------------------- determinism

/// One replication of a faulty supervised pass, reduced to scalars. Runs
/// entirely inside the replication body, so the merged grid exercises the
/// full fault + recovery machinery across worker threads.
exp::ReplicationResult faulty_pass_body(const exp::ReplicationContext& ctx) {
  sim::Simulation sim;
  vmm::Host host(sim, {}, ctx.seed);
  host.instant_start();
  std::vector<std::unique_ptr<guest::GuestOs>> guests;
  std::vector<guest::GuestOs*> ptrs;
  for (int i = 0; i < 2; ++i) {
    guests.push_back(std::make_unique<guest::GuestOs>(
        host, "vm" + std::to_string(i), sim::kGiB));
    guests.back()->add_service(std::make_unique<guest::SshService>());
    bool up = false;
    guests.back()->create_and_boot([&up] { up = true; });
    sim.run_until(sim.now() + sim::kHour);
    EXPECT_TRUE(up);
    ptrs.push_back(guests.back().get());
  }
  // Arm faults only after the testbed is up: the pass under test is the
  // rejuvenation, not the initial provisioning.
  host.configure_faults(fault::FaultConfig::uniform(0.3));
  rejuv::Supervisor sup(host, ptrs, {});
  bool done = false;
  sup.run([&done](const rejuv::SupervisorReport&) { done = true; });
  const sim::SimTime deadline = sim.now() + 12 * sim::kHour;
  while (!done && sim.pending_events() > 0 && sim.now() < deadline) {
    sim.step();
  }
  EXPECT_TRUE(done);

  // FNV-1a over the fault schedule, folded into a double-exact 32-bit
  // value: any divergence in kind, time or site across thread counts
  // shows up as a metric mismatch.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : host.faults().schedule_fingerprint()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  const auto& r = sup.report();
  exp::ReplicationResult out;
  out.values = {static_cast<double>(h >> 32),
                static_cast<double>(h & 0xffffffffu),
                static_cast<double>(host.faults().total_injected()),
                sim::to_seconds(r.total_duration()),
                static_cast<double>(r.resumed_vms),
                static_cast<double>(r.cold_booted_vms),
                static_cast<double>(r.recoveries.size())};
  return out;
}

TEST(FailureInjection, FaultScheduleIsByteIdenticalAcrossRunnerThreads) {
  exp::GridSpec spec;
  spec.points = 2;
  spec.replications = 3;
  spec.root_seed = 7;
  spec.threads = 1;
  const auto serial = exp::run_grid(spec, faulty_pass_body);
  spec.threads = 4;
  const auto parallel = exp::run_grid(spec, faulty_pass_body);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    const auto& a = serial.point(p);
    const auto& b = parallel.point(p);
    ASSERT_EQ(a.metrics().size(), b.metrics().size());
    for (std::size_t m = 0; m < a.metrics().size(); ++m) {
      // Bitwise equality, not tolerance: the runner's contract.
      EXPECT_EQ(a.mean(m), b.mean(m)) << "point " << p << " metric " << m;
      EXPECT_EQ(a.ci95(m), b.ci95(m)) << "point " << p << " metric " << m;
    }
  }
  // Faults actually fired somewhere, or the test proves nothing.
  double injected = 0;
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    injected += serial.point(p).mean(2);
  }
  EXPECT_GT(injected, 0.0);
}

}  // namespace
}  // namespace rh::test
