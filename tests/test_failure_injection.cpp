// Failure injection around the reboot window: what survives what.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/http_client.hpp"

namespace rh::test {
namespace {

TEST(FailureInjection, PowerLossAfterSuspendLosesImagesNotDisk) {
  // The operator suspends everything for a warm reboot, but the machine
  // loses power before the quick reload. The in-memory images are gone;
  // anything saved to disk earlier is not.
  HostFixture fx(2);
  // vm1's image goes to disk first (the admin hedged).
  bool saved = false;
  fx.host->vmm().save_domain_to_disk(fx.guests[1]->domain_id(),
                                     fx.host->images(), [&] { saved = true; });
  run_until_flag(fx.sim, saved);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);

  // Power loss instead of quick reload.
  bool up = false;
  fx.host->hardware_reboot([&] { up = true; });
  run_until_flag(fx.sim, up);

  // vm0's frozen image is unrecoverable; resume must fail loudly.
  EXPECT_TRUE(fx.host->preserved().empty());
  EXPECT_THROW(fx.host->vmm().resume_domain_on_memory(
                   "vm0", fx.guests[0].get(), [](DomainId) {}),
               InvariantViolation);
  // vm1 restores from its disk image; vm0 can only cold-boot.
  bool restored = false;
  fx.host->vmm().restore_domain_from_disk("vm1", fx.host->images(),
                                          fx.guests[1].get(),
                                          [&](DomainId) { restored = true; });
  run_until_flag(fx.sim, restored);
  EXPECT_TRUE(fx.guests[1]->integrity_ok());
  EXPECT_EQ(fx.guests[1]->state(), guest::OsState::kRunning);
  // vm0's object still believes it is suspended -- its image is simply
  // gone. Recovery means provisioning a fresh VM.
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kSuspended);
}

TEST(FailureInjection, SuspendedStateSurvivesMultipleQuickReloads) {
  // Preserved regions must survive not just one reload but any number of
  // them before the resume happens (e.g. the first new VMM was also bad
  // and was itself rejuvenated).
  HostFixture fx(1);
  auto cycle = [&fx] {
    bool loaded = false;
    fx.host->vmm().xexec_load([&] { loaded = true; });
    run_until_flag(fx.sim, loaded);
    if (fx.host->dom0_state() == vmm::Dom0State::kRunning) {
      bool down = false;
      fx.host->shutdown_dom0([&] { down = true; });
      run_until_flag(fx.sim, down);
    }
    bool up = false;
    fx.host->quick_reload([&] { up = true; });
    run_until_flag(fx.sim, up);
  };
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  bool loaded0 = false;
  fx.host->vmm().xexec_load([&] { loaded0 = true; });
  run_until_flag(fx.sim, loaded0);
  bool down0 = false;
  fx.host->shutdown_dom0([&] { down0 = true; });
  run_until_flag(fx.sim, down0);
  bool up0 = false;
  fx.host->quick_reload([&] { up0 = true; });
  run_until_flag(fx.sim, up0);

  cycle();  // a second reload before anyone resumed

  ASSERT_EQ(fx.host->preserved().size(), std::size_t{1});
  bool resumed = false;
  fx.host->vmm().resume_domain_on_memory("vm0", fx.guests[0].get(),
                                         [&](DomainId) { resumed = true; });
  run_until_flag(fx.sim, resumed);
  EXPECT_TRUE(fx.guests[0]->integrity_ok());
  EXPECT_EQ(fx.guests[0]->state(), guest::OsState::kRunning);
}

TEST(FailureInjection, TamperedPreservedPayloadIsRejected) {
  HostFixture fx(1);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  // Truncate the serialised record (bit-rot / buggy writer).
  const auto* region = fx.host->preserved().find("domain/vm0");
  ASSERT_NE(region, nullptr);
  mm::PreservedRegion corrupted = *region;
  corrupted.payload.resize(corrupted.payload.size() / 2);
  fx.host->preserved().put(std::move(corrupted));

  // The record is parsed when the (xend-serialised) resume executes.
  bool resumed = false;
  fx.host->vmm().resume_domain_on_memory("vm0", fx.guests[0].get(),
                                         [&](DomainId) { resumed = true; });
  EXPECT_THROW(
      {
        while (!resumed && fx.sim.pending_events() > 0) fx.sim.step();
      },
      InvariantViolation);
  EXPECT_FALSE(resumed);
}

TEST(FailureInjection, WarmRebootUnderActiveWorkloadIsClean) {
  // Requests in flight when the suspend lands must not corrupt anything;
  // the fleet stalls and resumes.
  HostFixture fx(0);
  auto web = std::make_unique<guest::GuestOs>(*fx.host, "web", sim::kGiB);
  auto& apache = static_cast<guest::ApacheService&>(
      web->add_service(std::make_unique<guest::ApacheService>()));
  std::vector<std::int64_t> files;
  for (int f = 0; f < 30; ++f) {
    files.push_back(web->vfs().create_file("f" + std::to_string(f),
                                           512 * sim::kKiB));
  }
  guest::GuestOs* web_ptr = web.get();
  fx.guests.push_back(std::move(web));
  bool booted = false;
  web_ptr->create_and_boot([&] { booted = true; });
  run_until_flag(fx.sim, booted);

  workload::HttpClientFleet fleet(*web_ptr, apache, files, {});
  fleet.start();
  fx.sim.run_for(5 * sim::kSecond);
  const auto ok_before = fleet.requests_ok();

  fx.rejuvenate(rejuv::RebootKind::kWarm);
  fx.sim.run_for(40 * sim::kSecond);
  fleet.stop();

  EXPECT_TRUE(web_ptr->integrity_ok());
  EXPECT_GT(fleet.requests_ok(), ok_before + 500);  // flow resumed
  // All cached content survived: no stale-token evictions.
  EXPECT_EQ(web_ptr->cache().stale_hits(), std::uint64_t{0});
}

TEST(FailureInjection, ResumeOfWrongGuestObjectStillChecksIntegrity) {
  // An operator resumes a preserved image into a *different* GuestOs
  // object (wrong hooks wiring). The signature check catches it.
  HostFixture fx(1);
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);

  auto impostor =
      std::make_unique<guest::GuestOs>(*fx.host, "impostor", sim::kGiB);
  // Force the impostor into a suspended-looking state via its own boot +
  // suspend is impossible (it has no domain); instead verify the API
  // rejects a non-suspended hooks object cleanly.
  bool resumed = false;
  EXPECT_THROW(
      {
        fx.host->vmm().resume_domain_on_memory("vm0", impostor.get(),
                                               [&](DomainId) { resumed = true; });
        while (!resumed && fx.sim.pending_events() > 0) fx.sim.step();
      },
      InvariantViolation);
}

}  // namespace
}  // namespace rh::test
