
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aging.cpp" "tests/CMakeFiles/rh_tests.dir/test_aging.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_aging.cpp.o.d"
  "/root/repo/tests/test_availability.cpp" "tests/CMakeFiles/rh_tests.dir/test_availability.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_availability.cpp.o.d"
  "/root/repo/tests/test_balloon.cpp" "tests/CMakeFiles/rh_tests.dir/test_balloon.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_balloon.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/rh_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_cpu_pool.cpp" "tests/CMakeFiles/rh_tests.dir/test_cpu_pool.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_cpu_pool.cpp.o.d"
  "/root/repo/tests/test_disk.cpp" "tests/CMakeFiles/rh_tests.dir/test_disk.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_disk.cpp.o.d"
  "/root/repo/tests/test_downtime_model.cpp" "tests/CMakeFiles/rh_tests.dir/test_downtime_model.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_downtime_model.cpp.o.d"
  "/root/repo/tests/test_event_channel.cpp" "tests/CMakeFiles/rh_tests.dir/test_event_channel.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_event_channel.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/rh_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/rh_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/rh_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_frame_allocator.cpp" "tests/CMakeFiles/rh_tests.dir/test_frame_allocator.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_frame_allocator.cpp.o.d"
  "/root/repo/tests/test_guest_os.cpp" "tests/CMakeFiles/rh_tests.dir/test_guest_os.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_guest_os.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/rh_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/rh_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_http_client.cpp" "tests/CMakeFiles/rh_tests.dir/test_http_client.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_http_client.cpp.o.d"
  "/root/repo/tests/test_machine_memory.cpp" "tests/CMakeFiles/rh_tests.dir/test_machine_memory.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_machine_memory.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/rh_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_nic_bios.cpp" "tests/CMakeFiles/rh_tests.dir/test_nic_bios.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_nic_bios.cpp.o.d"
  "/root/repo/tests/test_p2m_table.cpp" "tests/CMakeFiles/rh_tests.dir/test_p2m_table.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_p2m_table.cpp.o.d"
  "/root/repo/tests/test_page_cache.cpp" "tests/CMakeFiles/rh_tests.dir/test_page_cache.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_page_cache.cpp.o.d"
  "/root/repo/tests/test_policy.cpp" "tests/CMakeFiles/rh_tests.dir/test_policy.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_policy.cpp.o.d"
  "/root/repo/tests/test_preserved_registry.cpp" "tests/CMakeFiles/rh_tests.dir/test_preserved_registry.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_preserved_registry.cpp.o.d"
  "/root/repo/tests/test_prober.cpp" "tests/CMakeFiles/rh_tests.dir/test_prober.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_prober.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rh_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_quick_reload.cpp" "tests/CMakeFiles/rh_tests.dir/test_quick_reload.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_quick_reload.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/rh_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_reboot_drivers.cpp" "tests/CMakeFiles/rh_tests.dir/test_reboot_drivers.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_reboot_drivers.cpp.o.d"
  "/root/repo/tests/test_save_restore.cpp" "tests/CMakeFiles/rh_tests.dir/test_save_restore.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_save_restore.cpp.o.d"
  "/root/repo/tests/test_script.cpp" "tests/CMakeFiles/rh_tests.dir/test_script.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_script.cpp.o.d"
  "/root/repo/tests/test_serde.cpp" "tests/CMakeFiles/rh_tests.dir/test_serde.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_serde.cpp.o.d"
  "/root/repo/tests/test_services.cpp" "tests/CMakeFiles/rh_tests.dir/test_services.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_services.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/rh_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rh_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_suspend_resume.cpp" "tests/CMakeFiles/rh_tests.dir/test_suspend_resume.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_suspend_resume.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/rh_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_tcp.cpp.o.d"
  "/root/repo/tests/test_time_series.cpp" "tests/CMakeFiles/rh_tests.dir/test_time_series.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_time_series.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/rh_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_vfs.cpp" "tests/CMakeFiles/rh_tests.dir/test_vfs.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_vfs.cpp.o.d"
  "/root/repo/tests/test_vm_migration.cpp" "tests/CMakeFiles/rh_tests.dir/test_vm_migration.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_vm_migration.cpp.o.d"
  "/root/repo/tests/test_vmm_domains.cpp" "tests/CMakeFiles/rh_tests.dir/test_vmm_domains.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_vmm_domains.cpp.o.d"
  "/root/repo/tests/test_vmm_heap.cpp" "tests/CMakeFiles/rh_tests.dir/test_vmm_heap.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_vmm_heap.cpp.o.d"
  "/root/repo/tests/test_xenstore.cpp" "tests/CMakeFiles/rh_tests.dir/test_xenstore.cpp.o" "gcc" "tests/CMakeFiles/rh_tests.dir/test_xenstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_rejuv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
