# Empty dependencies file for rh_tests.
# This may be replaced when dependencies are built.
