file(REMOVE_RECURSE
  "CMakeFiles/aging_crash.dir/aging_crash.cpp.o"
  "CMakeFiles/aging_crash.dir/aging_crash.cpp.o.d"
  "aging_crash"
  "aging_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
