# Empty compiler generated dependencies file for aging_crash.
# This may be replaced when dependencies are built.
