file(REMOVE_RECURSE
  "CMakeFiles/consolidated_server_rejuvenation.dir/consolidated_server_rejuvenation.cpp.o"
  "CMakeFiles/consolidated_server_rejuvenation.dir/consolidated_server_rejuvenation.cpp.o.d"
  "consolidated_server_rejuvenation"
  "consolidated_server_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidated_server_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
