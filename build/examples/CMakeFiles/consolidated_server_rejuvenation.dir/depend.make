# Empty dependencies file for consolidated_server_rejuvenation.
# This may be replaced when dependencies are built.
