file(REMOVE_RECURSE
  "CMakeFiles/rh_guest.dir/guest/apache.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/apache.cpp.o.d"
  "CMakeFiles/rh_guest.dir/guest/guest_os.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/guest_os.cpp.o.d"
  "CMakeFiles/rh_guest.dir/guest/page_cache.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/page_cache.cpp.o.d"
  "CMakeFiles/rh_guest.dir/guest/service.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/service.cpp.o.d"
  "CMakeFiles/rh_guest.dir/guest/sshd.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/sshd.cpp.o.d"
  "CMakeFiles/rh_guest.dir/guest/vfs.cpp.o"
  "CMakeFiles/rh_guest.dir/guest/vfs.cpp.o.d"
  "librh_guest.a"
  "librh_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
