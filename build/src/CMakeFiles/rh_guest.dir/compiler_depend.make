# Empty compiler generated dependencies file for rh_guest.
# This may be replaced when dependencies are built.
