file(REMOVE_RECURSE
  "librh_guest.a"
)
