
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/apache.cpp" "src/CMakeFiles/rh_guest.dir/guest/apache.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/apache.cpp.o.d"
  "/root/repo/src/guest/guest_os.cpp" "src/CMakeFiles/rh_guest.dir/guest/guest_os.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/guest_os.cpp.o.d"
  "/root/repo/src/guest/page_cache.cpp" "src/CMakeFiles/rh_guest.dir/guest/page_cache.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/page_cache.cpp.o.d"
  "/root/repo/src/guest/service.cpp" "src/CMakeFiles/rh_guest.dir/guest/service.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/service.cpp.o.d"
  "/root/repo/src/guest/sshd.cpp" "src/CMakeFiles/rh_guest.dir/guest/sshd.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/sshd.cpp.o.d"
  "/root/repo/src/guest/vfs.cpp" "src/CMakeFiles/rh_guest.dir/guest/vfs.cpp.o" "gcc" "src/CMakeFiles/rh_guest.dir/guest/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
