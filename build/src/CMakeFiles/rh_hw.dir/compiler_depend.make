# Empty compiler generated dependencies file for rh_hw.
# This may be replaced when dependencies are built.
