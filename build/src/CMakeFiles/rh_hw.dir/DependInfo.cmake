
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bios.cpp" "src/CMakeFiles/rh_hw.dir/hw/bios.cpp.o" "gcc" "src/CMakeFiles/rh_hw.dir/hw/bios.cpp.o.d"
  "/root/repo/src/hw/disk.cpp" "src/CMakeFiles/rh_hw.dir/hw/disk.cpp.o" "gcc" "src/CMakeFiles/rh_hw.dir/hw/disk.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/CMakeFiles/rh_hw.dir/hw/machine.cpp.o" "gcc" "src/CMakeFiles/rh_hw.dir/hw/machine.cpp.o.d"
  "/root/repo/src/hw/machine_memory.cpp" "src/CMakeFiles/rh_hw.dir/hw/machine_memory.cpp.o" "gcc" "src/CMakeFiles/rh_hw.dir/hw/machine_memory.cpp.o.d"
  "/root/repo/src/hw/nic.cpp" "src/CMakeFiles/rh_hw.dir/hw/nic.cpp.o" "gcc" "src/CMakeFiles/rh_hw.dir/hw/nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
