file(REMOVE_RECURSE
  "librh_hw.a"
)
