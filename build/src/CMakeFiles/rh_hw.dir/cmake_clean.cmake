file(REMOVE_RECURSE
  "CMakeFiles/rh_hw.dir/hw/bios.cpp.o"
  "CMakeFiles/rh_hw.dir/hw/bios.cpp.o.d"
  "CMakeFiles/rh_hw.dir/hw/disk.cpp.o"
  "CMakeFiles/rh_hw.dir/hw/disk.cpp.o.d"
  "CMakeFiles/rh_hw.dir/hw/machine.cpp.o"
  "CMakeFiles/rh_hw.dir/hw/machine.cpp.o.d"
  "CMakeFiles/rh_hw.dir/hw/machine_memory.cpp.o"
  "CMakeFiles/rh_hw.dir/hw/machine_memory.cpp.o.d"
  "CMakeFiles/rh_hw.dir/hw/nic.cpp.o"
  "CMakeFiles/rh_hw.dir/hw/nic.cpp.o.d"
  "librh_hw.a"
  "librh_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
