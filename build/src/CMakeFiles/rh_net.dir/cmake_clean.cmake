file(REMOVE_RECURSE
  "CMakeFiles/rh_net.dir/net/network.cpp.o"
  "CMakeFiles/rh_net.dir/net/network.cpp.o.d"
  "CMakeFiles/rh_net.dir/net/tcp.cpp.o"
  "CMakeFiles/rh_net.dir/net/tcp.cpp.o.d"
  "librh_net.a"
  "librh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
