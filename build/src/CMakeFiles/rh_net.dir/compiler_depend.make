# Empty compiler generated dependencies file for rh_net.
# This may be replaced when dependencies are built.
