file(REMOVE_RECURSE
  "librh_net.a"
)
