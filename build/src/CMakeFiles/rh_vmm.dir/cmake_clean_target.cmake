file(REMOVE_RECURSE
  "librh_vmm.a"
)
