
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/calibration.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/calibration.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/calibration.cpp.o.d"
  "/root/repo/src/vmm/domain.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/domain.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/domain.cpp.o.d"
  "/root/repo/src/vmm/event_channel.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/event_channel.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/event_channel.cpp.o.d"
  "/root/repo/src/vmm/host.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/host.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/host.cpp.o.d"
  "/root/repo/src/vmm/save_restore.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/save_restore.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/save_restore.cpp.o.d"
  "/root/repo/src/vmm/suspend.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/suspend.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/suspend.cpp.o.d"
  "/root/repo/src/vmm/vmm.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/vmm.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/vmm.cpp.o.d"
  "/root/repo/src/vmm/vmm_heap.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/vmm_heap.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/vmm_heap.cpp.o.d"
  "/root/repo/src/vmm/xenstore.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/xenstore.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/xenstore.cpp.o.d"
  "/root/repo/src/vmm/xexec.cpp" "src/CMakeFiles/rh_vmm.dir/vmm/xexec.cpp.o" "gcc" "src/CMakeFiles/rh_vmm.dir/vmm/xexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
