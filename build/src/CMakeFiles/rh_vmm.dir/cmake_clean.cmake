file(REMOVE_RECURSE
  "CMakeFiles/rh_vmm.dir/vmm/calibration.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/calibration.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/domain.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/domain.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/event_channel.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/event_channel.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/host.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/host.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/save_restore.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/save_restore.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/suspend.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/suspend.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/vmm.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/vmm.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/vmm_heap.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/vmm_heap.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/xenstore.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/xenstore.cpp.o.d"
  "CMakeFiles/rh_vmm.dir/vmm/xexec.cpp.o"
  "CMakeFiles/rh_vmm.dir/vmm/xexec.cpp.o.d"
  "librh_vmm.a"
  "librh_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
