# Empty compiler generated dependencies file for rh_vmm.
# This may be replaced when dependencies are built.
