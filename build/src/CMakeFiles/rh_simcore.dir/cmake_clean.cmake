file(REMOVE_RECURSE
  "CMakeFiles/rh_simcore.dir/simcore/event_queue.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/event_queue.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/histogram.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/histogram.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/random.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/random.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/script.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/script.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/simulation.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/simulation.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/stats.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/stats.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/time_series.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/time_series.cpp.o.d"
  "CMakeFiles/rh_simcore.dir/simcore/trace.cpp.o"
  "CMakeFiles/rh_simcore.dir/simcore/trace.cpp.o.d"
  "librh_simcore.a"
  "librh_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
