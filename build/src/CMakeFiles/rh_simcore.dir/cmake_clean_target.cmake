file(REMOVE_RECURSE
  "librh_simcore.a"
)
