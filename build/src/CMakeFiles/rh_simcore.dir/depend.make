# Empty dependencies file for rh_simcore.
# This may be replaced when dependencies are built.
