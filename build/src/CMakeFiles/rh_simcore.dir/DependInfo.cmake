
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/event_queue.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/event_queue.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/event_queue.cpp.o.d"
  "/root/repo/src/simcore/histogram.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/histogram.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/histogram.cpp.o.d"
  "/root/repo/src/simcore/random.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/random.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/random.cpp.o.d"
  "/root/repo/src/simcore/script.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/script.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/script.cpp.o.d"
  "/root/repo/src/simcore/simulation.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/simulation.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/simulation.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/stats.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/stats.cpp.o.d"
  "/root/repo/src/simcore/time_series.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/time_series.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/time_series.cpp.o.d"
  "/root/repo/src/simcore/trace.cpp" "src/CMakeFiles/rh_simcore.dir/simcore/trace.cpp.o" "gcc" "src/CMakeFiles/rh_simcore.dir/simcore/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
