file(REMOVE_RECURSE
  "CMakeFiles/rh_mm.dir/mm/balloon.cpp.o"
  "CMakeFiles/rh_mm.dir/mm/balloon.cpp.o.d"
  "CMakeFiles/rh_mm.dir/mm/frame_allocator.cpp.o"
  "CMakeFiles/rh_mm.dir/mm/frame_allocator.cpp.o.d"
  "CMakeFiles/rh_mm.dir/mm/p2m_table.cpp.o"
  "CMakeFiles/rh_mm.dir/mm/p2m_table.cpp.o.d"
  "CMakeFiles/rh_mm.dir/mm/preserved_registry.cpp.o"
  "CMakeFiles/rh_mm.dir/mm/preserved_registry.cpp.o.d"
  "CMakeFiles/rh_mm.dir/mm/serde.cpp.o"
  "CMakeFiles/rh_mm.dir/mm/serde.cpp.o.d"
  "librh_mm.a"
  "librh_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
