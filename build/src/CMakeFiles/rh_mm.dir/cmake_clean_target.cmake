file(REMOVE_RECURSE
  "librh_mm.a"
)
