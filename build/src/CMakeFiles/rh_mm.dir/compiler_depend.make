# Empty compiler generated dependencies file for rh_mm.
# This may be replaced when dependencies are built.
