
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/balloon.cpp" "src/CMakeFiles/rh_mm.dir/mm/balloon.cpp.o" "gcc" "src/CMakeFiles/rh_mm.dir/mm/balloon.cpp.o.d"
  "/root/repo/src/mm/frame_allocator.cpp" "src/CMakeFiles/rh_mm.dir/mm/frame_allocator.cpp.o" "gcc" "src/CMakeFiles/rh_mm.dir/mm/frame_allocator.cpp.o.d"
  "/root/repo/src/mm/p2m_table.cpp" "src/CMakeFiles/rh_mm.dir/mm/p2m_table.cpp.o" "gcc" "src/CMakeFiles/rh_mm.dir/mm/p2m_table.cpp.o.d"
  "/root/repo/src/mm/preserved_registry.cpp" "src/CMakeFiles/rh_mm.dir/mm/preserved_registry.cpp.o" "gcc" "src/CMakeFiles/rh_mm.dir/mm/preserved_registry.cpp.o.d"
  "/root/repo/src/mm/serde.cpp" "src/CMakeFiles/rh_mm.dir/mm/serde.cpp.o" "gcc" "src/CMakeFiles/rh_mm.dir/mm/serde.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
