file(REMOVE_RECURSE
  "CMakeFiles/rh_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/rh_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/rh_cluster.dir/cluster/load_balancer.cpp.o"
  "CMakeFiles/rh_cluster.dir/cluster/load_balancer.cpp.o.d"
  "CMakeFiles/rh_cluster.dir/cluster/migration.cpp.o"
  "CMakeFiles/rh_cluster.dir/cluster/migration.cpp.o.d"
  "CMakeFiles/rh_cluster.dir/cluster/throughput_model.cpp.o"
  "CMakeFiles/rh_cluster.dir/cluster/throughput_model.cpp.o.d"
  "CMakeFiles/rh_cluster.dir/cluster/vm_migrator.cpp.o"
  "CMakeFiles/rh_cluster.dir/cluster/vm_migrator.cpp.o.d"
  "librh_cluster.a"
  "librh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
