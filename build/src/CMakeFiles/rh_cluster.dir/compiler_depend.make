# Empty compiler generated dependencies file for rh_cluster.
# This may be replaced when dependencies are built.
