file(REMOVE_RECURSE
  "librh_cluster.a"
)
