
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/http_client.cpp" "src/CMakeFiles/rh_workload.dir/workload/http_client.cpp.o" "gcc" "src/CMakeFiles/rh_workload.dir/workload/http_client.cpp.o.d"
  "/root/repo/src/workload/prober.cpp" "src/CMakeFiles/rh_workload.dir/workload/prober.cpp.o" "gcc" "src/CMakeFiles/rh_workload.dir/workload/prober.cpp.o.d"
  "/root/repo/src/workload/throughput_recorder.cpp" "src/CMakeFiles/rh_workload.dir/workload/throughput_recorder.cpp.o" "gcc" "src/CMakeFiles/rh_workload.dir/workload/throughput_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rh_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rh_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
