file(REMOVE_RECURSE
  "librh_workload.a"
)
