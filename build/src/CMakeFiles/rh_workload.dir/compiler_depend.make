# Empty compiler generated dependencies file for rh_workload.
# This may be replaced when dependencies are built.
