file(REMOVE_RECURSE
  "CMakeFiles/rh_workload.dir/workload/http_client.cpp.o"
  "CMakeFiles/rh_workload.dir/workload/http_client.cpp.o.d"
  "CMakeFiles/rh_workload.dir/workload/prober.cpp.o"
  "CMakeFiles/rh_workload.dir/workload/prober.cpp.o.d"
  "CMakeFiles/rh_workload.dir/workload/throughput_recorder.cpp.o"
  "CMakeFiles/rh_workload.dir/workload/throughput_recorder.cpp.o.d"
  "librh_workload.a"
  "librh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
