file(REMOVE_RECURSE
  "librh_rejuv.a"
)
