# Empty compiler generated dependencies file for rh_rejuv.
# This may be replaced when dependencies are built.
