file(REMOVE_RECURSE
  "CMakeFiles/rh_rejuv.dir/rejuv/availability.cpp.o"
  "CMakeFiles/rh_rejuv.dir/rejuv/availability.cpp.o.d"
  "CMakeFiles/rh_rejuv.dir/rejuv/downtime_model.cpp.o"
  "CMakeFiles/rh_rejuv.dir/rejuv/downtime_model.cpp.o.d"
  "CMakeFiles/rh_rejuv.dir/rejuv/policy.cpp.o"
  "CMakeFiles/rh_rejuv.dir/rejuv/policy.cpp.o.d"
  "CMakeFiles/rh_rejuv.dir/rejuv/reboot_driver.cpp.o"
  "CMakeFiles/rh_rejuv.dir/rejuv/reboot_driver.cpp.o.d"
  "librh_rejuv.a"
  "librh_rejuv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_rejuv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
