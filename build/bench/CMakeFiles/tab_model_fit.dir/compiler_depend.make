# Empty compiler generated dependencies file for tab_model_fit.
# This may be replaced when dependencies are built.
