file(REMOVE_RECURSE
  "CMakeFiles/tab_model_fit.dir/tab_model_fit.cpp.o"
  "CMakeFiles/tab_model_fit.dir/tab_model_fit.cpp.o.d"
  "tab_model_fit"
  "tab_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
