file(REMOVE_RECURSE
  "CMakeFiles/tab_availability.dir/tab_availability.cpp.o"
  "CMakeFiles/tab_availability.dir/tab_availability.cpp.o.d"
  "tab_availability"
  "tab_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
