# Empty compiler generated dependencies file for fig5_numvms.
# This may be replaced when dependencies are built.
