file(REMOVE_RECURSE
  "CMakeFiles/fig5_numvms.dir/fig5_numvms.cpp.o"
  "CMakeFiles/fig5_numvms.dir/fig5_numvms.cpp.o.d"
  "fig5_numvms"
  "fig5_numvms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_numvms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
