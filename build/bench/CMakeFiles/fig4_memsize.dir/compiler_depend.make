# Empty compiler generated dependencies file for fig4_memsize.
# This may be replaced when dependencies are built.
