file(REMOVE_RECURSE
  "CMakeFiles/fig4_memsize.dir/fig4_memsize.cpp.o"
  "CMakeFiles/fig4_memsize.dir/fig4_memsize.cpp.o.d"
  "fig4_memsize"
  "fig4_memsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
