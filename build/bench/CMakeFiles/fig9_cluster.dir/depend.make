# Empty dependencies file for fig9_cluster.
# This may be replaced when dependencies are built.
