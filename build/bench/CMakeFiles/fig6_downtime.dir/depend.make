# Empty dependencies file for fig6_downtime.
# This may be replaced when dependencies are built.
