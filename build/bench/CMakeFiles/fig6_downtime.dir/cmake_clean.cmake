file(REMOVE_RECURSE
  "CMakeFiles/fig6_downtime.dir/fig6_downtime.cpp.o"
  "CMakeFiles/fig6_downtime.dir/fig6_downtime.cpp.o.d"
  "fig6_downtime"
  "fig6_downtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
