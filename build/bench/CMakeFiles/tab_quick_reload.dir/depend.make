# Empty dependencies file for tab_quick_reload.
# This may be replaced when dependencies are built.
