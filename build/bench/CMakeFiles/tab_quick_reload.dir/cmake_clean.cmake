file(REMOVE_RECURSE
  "CMakeFiles/tab_quick_reload.dir/tab_quick_reload.cpp.o"
  "CMakeFiles/tab_quick_reload.dir/tab_quick_reload.cpp.o.d"
  "tab_quick_reload"
  "tab_quick_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_quick_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
